open Runtime
module Rt = Etx_runtime
open Dnet

type record = {
  rid : int;
  key : string;
  body : string;
  result : Etx_types.result_value;
  tries : int;
  issued_at : float;
  delivered_at : float;
  cached : bool;
      (** served from an app server's method cache: no transaction was
          committed for this request, so the spec checks cache coherence
          instead of A.1/exactly-once *)
  replica : (int * int) option;
      (** [Some (lsn, lag)]: served by an asynchronous read replica from
          the primary's committed state as of [lsn], with provable
          staleness [lag]; no transaction was committed for this request,
          so the spec checks replica consistency instead of
          A.1/exactly-once *)
  group : int;
      (** the replica group that served the committed result — stamped by
          the server into every result payload. Under reconfiguration the
          key's home group changes across epochs, so the spec reads the
          serving group from the record rather than recomputing it from a
          single map *)
}

(* Elastic routing state (DESIGN.md §16): this client's current view of
   the epoch-versioned shard map, refreshed when a server bounce carries a
   newer epoch than [map]. Mutable per client — each client learns of a
   reconfiguration at its own pace. *)
type reconfig = {
  mutable map : Shard_map.t;
  group_servers : int -> Types.proc_id list;
  cfg_servers : Types.proc_id list;
      (** the config group's application servers, queried for newer maps *)
}

type handle = {
  pid : Types.proc_id;
  records : record list ref;
  finished : bool ref;
}

(* Request ids come from the runtime's per-instance uid counter so
   concurrent clients in one runtime never collide, and independent trials
   (possibly running in parallel domains) never share state. *)
let fresh_rid () = Rt.fresh_uid ()

let wants_result rid j m =
  match m.Types.payload with
  | Etx_types.Result_msg { rid = r; j = j'; _ }
  | Etx_types.Result_cached_msg { rid = r; j = j'; _ }
  | Etx_types.Result_replica_msg { rid = r; j = j'; _ }
  | Etx_types.Result_nack_msg { rid = r; j = j'; _ } ->
      r = rid && j' = j
  | Etx_types.Result_batch_msg { items; _ } ->
      List.exists (fun (r, j', _) -> r = rid && j' = j) items
  | _ -> false

(* this client's decision for (rid, j), from any framing; the [bool] marks
   a cache-served reply, the option a replica-served one (both always a
   committed-with-result shape), and the [int] the serving group *)
let decision_for rid j m =
  match m.Types.payload with
  | Etx_types.Result_msg { decision; group; _ } -> (decision, false, None, group)
  | Etx_types.Result_cached_msg { result; group; _ } ->
      ( { Etx_types.result = Some result; outcome = Dbms.Rm.Commit },
        true,
        None,
        group )
  | Etx_types.Result_replica_msg { result; lsn; lag; group; _ } ->
      ( { Etx_types.result = Some result; outcome = Dbms.Rm.Commit },
        false,
        Some (lsn, lag),
        group )
  | Etx_types.Result_batch_msg { items; group } -> (
      match List.find_opt (fun (r, j', _) -> r = rid && j' = j) items with
      | Some (_, _, d) -> (d, false, None, group)
      | None -> assert false)
  | _ -> assert false

let spawn (rt : Rt.t) ?(name = "client") ?(period = 400.) ?(affinity = 0)
    ?router ?reconfig ~servers ~script () =
  let records = ref [] in
  let finished = ref false in
  (match servers with
  | _ :: _ -> ()
  | [] -> invalid_arg "Client.spawn: no application servers");
  (* [route key] names the replica group serving [key]: default is the
     single group made of [servers]; a sharded cluster passes [router] to
     spread keys over its groups. With [reconfig] the lookup instead goes
     through this client's (mutable) epoch-versioned map view, so it is
     re-resolved on {e every} attempt — a mid-request map refresh
     re-routes the next send. *)
  let current_route =
    match (reconfig, router) with
    | Some rc, _ ->
        fun key ->
          let g = Shard_map.shard_of rc.map key in
          (g, rc.group_servers g)
    | None, Some r -> r
    | None, None -> fun _key -> (0, servers)
  in
  let pid =
    rt.spawn ~name ~main:(fun ~recovery () ->
        if recovery then Rt.note "client-recovery:staying-silent"
        else begin
          let ch = Rchannel.create () in
          Rchannel.start ch;
          (* fetched once per fiber; None = observability off (common case) *)
          let sink = Rt.obs () in
          (* Map refresh (DESIGN.md §16): a bounce carried an epoch newer
             than ours. Ask the config group for the current map and adopt
             anything newer; bounded by one back-off period — if no newer
             map arrived (the flip is still in flight) the caller's retry
             loop bounces again and re-queries. *)
          let refresh rc =
            let have = Shard_map.epoch rc.map in
            (match sink with
            | None -> ()
            | Some s -> s.Rt.obs_count "client.map_refresh" 1);
            Rchannel.broadcast ch rc.cfg_servers
              (Reconfig.Rmsg.Cfg_query { have });
            let deadline = Rt.now () +. period in
            let rec collect () =
              if Shard_map.epoch rc.map <= have && Rt.now () < deadline then begin
                (match
                   Rt.recv_cls
                     ~timeout:(deadline -. Rt.now ())
                     Reconfig.Rmsg.cls_cfg_reply
                 with
                | Some
                    { Types.payload = Reconfig.Rmsg.Cfg_current { map }; _ } ->
                    if Shard_map.epoch map > Shard_map.epoch rc.map then
                      rc.map <- map
                | Some _ | None -> ());
                collect ()
              end
            in
            collect ()
          in
          let issue body =
            let rid = fresh_rid () in
            let key = Etx_types.routing_key body in
            (* [affinity] rotates the first-try target so independent
               clients spread over the group's servers (cache locality /
               load); 0 — the default — is the paper's behaviour of always
               addressing the head server first. Retries still broadcast. *)
            let primary_of servers =
              match servers with
              | [] -> invalid_arg "Client: router returned no servers"
              | servers ->
                  List.nth servers (affinity mod List.length servers)
            in
            let request = { Etx_types.rid; key; body } in
            let issued_at = Rt.now () in
            let span =
              match sink with
              | None -> 0
              | Some s ->
                  s.Rt.obs_count "client.requests" 1;
                  s.Rt.obs_span_open ~trace:rid "request"
            in
            (* A bounce carrying a map epoch newer than ours means our
               route itself is stale (the cluster reconfigured): refetch
               the map and re-route the same try. [true] iff handled. *)
            let stale_map epoch =
              match reconfig with
              | Some rc when epoch > Shard_map.epoch rc.map ->
                  refresh rc;
                  true
              | Some _ | None -> false
            in
            (* one try = one result identifier j (Fig. 2 main loop).

               [g0] pins the try to the group it was first sent to: a
               try's registers live in that group's namespace, so after
               a map refresh moves the key the same j must {e not} be
               carried to the new group — the old group's cleaner could
               still abort its regD[j] (and deliver that abort to us)
               while the new group independently decides the same j,
               and the request would execute twice under different
               register arrays. Re-routing therefore starts a fresh try
               at the new group. That is safe: the route only changes
               when the key moved, and the database-level seal dooms
               any try still in flight at the old group to abort — and
               if an old try already {e committed}, the decision
               transfer installed it at the destination, whose servers
               replay a terminated commit for every later try. *)
            let rec try_j j g0 =
              let group, servers = current_route key in
              if group <> g0 then try_j (j + 1) group
              else begin
                Rchannel.send ch (primary_of servers)
                  (Etx_types.Request_msg { request; j; group; span });
                match
                  Rt.recv ~timeout:period ~cls:Etx_types.cls_result
                    ~filter:(wants_result rid j) ()
                with
                | Some
                    { Types.payload = Etx_types.Result_nack_msg { epoch; _ }; _ }
                  ->
                    (* explicit misroute bounce: the primary serves another
                       group (or a newer map), so re-route now rather than
                       waiting out the resend timer *)
                    (match sink with
                    | None -> ()
                    | Some s -> s.Rt.obs_count "client.bounced" 1);
                    if stale_map epoch then try_j j g0 else broadcast_phase j g0
                | Some m -> conclude j m
                | None -> broadcast_phase j g0
              end
            and broadcast_phase j g0 =
              (match sink with
              | None -> ()
              | Some s -> s.Rt.obs_count "client.backoff_epochs" 1);
              let group, servers = current_route key in
              if group <> g0 then try_j (j + 1) group
              else begin
                Rchannel.broadcast ch servers
                  (Etx_types.Request_msg { request; j; group; span });
                await_broadcast j g0
              end
            and await_broadcast j g0 =
              match
                Rt.recv ~timeout:period ~cls:Etx_types.cls_result
                  ~filter:(wants_result rid j) ()
              with
              | Some { Types.payload = Etx_types.Result_nack_msg { epoch; _ }; _ }
                ->
                  (* a bounce during the broadcast phase usually carries no
                     news — the fan-out already reached every server — so
                     consume it and keep waiting (no immediate rebroadcast:
                     N-1 misrouted targets would otherwise trigger N-1
                     resend storms). The exception is a newer epoch: the
                     whole fan-out went to a stale group, so refetch the
                     map and re-fan out to the new one *)
                  if stale_map epoch then broadcast_phase j g0
                  else await_broadcast j g0
              | Some m -> conclude j m
              | None -> broadcast_phase j g0
            and conclude j m =
              let decision, cached, replica, group = decision_for rid j m in
              match (decision.outcome, decision.result) with
              | Dbms.Rm.Commit, Some result ->
                  let record =
                    {
                      rid;
                      key;
                      body;
                      result;
                      tries = j;
                      issued_at;
                      delivered_at = Rt.now ();
                      cached;
                      replica;
                      group;
                    }
                  in
                  records := !records @ [ record ];
                  (match sink with
                  | None -> ()
                  | Some s ->
                      (* incremented exactly where the record is
                         appended, so counter == |records| on any
                         backend — the Spec cross-check relies on it *)
                      s.Rt.obs_count "client.committed" 1;
                      if cached then s.Rt.obs_count "client.cache_served" 1;
                      if replica <> None then
                        s.Rt.obs_count "client.replica_served" 1;
                      s.Rt.obs_observe "client.latency_ms"
                        (record.delivered_at -. record.issued_at);
                      s.Rt.obs_span_attr span "tries" (string_of_int j);
                      s.Rt.obs_span_close span);
                  record
              | Dbms.Rm.Commit, None ->
                  (* a committed decision always carries a result (V.1);
                     reaching this is a protocol bug worth crashing on *)
                  failwith "e-Transaction: committed decision without result"
              | Dbms.Rm.Abort, _ ->
                  (match sink with
                  | None -> ()
                  | Some s -> s.Rt.obs_count "client.retries" 1);
                  try_j (j + 1) (fst (current_route key))
            in
            try_j 1 (fst (current_route key))
          in
          script ~issue;
          finished := true
        end)
  in
  { pid; records; finished }

let pid t = t.pid

let records t = !(t.records)

let script_done t = !(t.finished)
