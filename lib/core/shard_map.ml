(* The placement map moved to [Reconfig.Shard_map] when it grew epochs
   (DESIGN.md §16) — the reconfiguration layer cannot depend on core, but
   core's routing needs [Etx_types.routing_key]. This alias keeps the
   historical [Etx.Shard_map] surface (and adds the body-routing helper)
   on top of the epoch-versioned implementation; epoch-0 placement is
   bit-identical to the old unversioned map. *)

include Reconfig.Shard_map

let shard_of_body t body = shard_of t (Etx_types.routing_key body)
