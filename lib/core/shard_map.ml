type policy = Hash | Range of string list

type t = { shards : int; policy : policy }

let create ?(policy = Hash) ~shards () =
  if shards < 1 then invalid_arg "Shard_map.create: shards must be >= 1";
  (match policy with
  | Hash -> ()
  | Range bounds ->
      if List.length bounds <> shards - 1 then
        invalid_arg
          "Shard_map.create: a Range policy needs exactly shards-1 boundaries";
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | [ _ ] | [] -> true
      in
      if not (sorted bounds) then
        invalid_arg "Shard_map.create: Range boundaries must be strictly sorted");
  { shards; policy }

let shards t = t.shards

(* FNV-1a over the key bytes, folded into OCaml's 63-bit native int (the
   64-bit offset basis with its top bit dropped; multiplication wraps mod
   2^63, which is just as mixing). [Hashtbl.hash] would work today, but its
   value is not pinned by the language; a hand-rolled hash keeps shard
   placement stable across compiler versions, which the deterministic
   replay story depends on. *)
let fnv1a key =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let shard_of t key =
  match t.policy with
  | Hash -> if t.shards = 1 then 0 else fnv1a key mod t.shards
  | Range bounds ->
      let rec find i = function
        | b :: rest -> if key < b then i else find (i + 1) rest
        | [] -> i
      in
      find 0 bounds

let shard_of_body t body = shard_of t (Etx_types.routing_key body)

let shards_of t keys =
  List.map (shard_of t) keys |> List.sort_uniq compare
