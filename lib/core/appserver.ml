open Runtime
module Rt = Etx_runtime
open Dnet
open Etx_types

type fd_spec =
  | Fd_oracle
  | Fd_heartbeat of {
      period : float;
      initial_timeout : float;
      timeout_bump : float;
    }

type register_backend = Reg_ct | Reg_synod

type config = {
  rt : Rt.t;  (** the execution substrate hosting this server *)
  group : int;
  index : int;
  servers : Types.proc_id list;
  dbs : Types.proc_id list;
  business : Business.t;
  fd_spec : fd_spec;
  clean_period : float;
  poll : float;
  exec_backoff : float;
  gc_after : float option;
  backend : register_backend;
  persist : Consensus.Agent.persistence option;
  breakdown : Stats.Breakdown.t option;
}

let config ?(fd_spec = Fd_oracle) ?(clean_period = 20.) ?(poll = 10.)
    ?(exec_backoff = 40.) ?gc_after ?(backend = Reg_ct) ?persist ?breakdown
    ?(group = 0) ~rt ~index ~servers ~dbs ~business () =
  (match (backend, persist) with
  | Reg_synod, Some _ ->
      invalid_arg
        "Appserver.config: the Synod backend does not support persistence"
  | (Reg_ct | Reg_synod), _ -> ());
  {
    rt;
    group;
    index;
    servers;
    dbs;
    business;
    fd_spec;
    clean_period;
    poll;
    exec_backoff;
    gc_after;
    backend;
    persist;
    breakdown;
  }

(* Per-request protocol state on one server. Everything here is volatile
   (servers are stateless): it only caches what the registers and client
   messages already determine. *)
type rid_state = {
  mutable client : Types.proc_id option;
  mutable last : (int * decision) option;  (** last terminated try here *)
  mutable cleaned : int list;  (** the paper's [clist], per request *)
  mutable terminated_at : float option;  (** for the GC grace period *)
  mutable rspan : int;
      (** the client's root span id, from the request message (0 = none);
          per-try and cleaner spans parent under it *)
}

(* The wo-register surface the protocol needs, abstracted over the two
   consensus backends. *)
type registers = {
  reg_write : name:string -> j:int -> Types.payload -> Types.payload;
  reg_read : name:string -> j:int -> Types.payload option;
  reg_decided_keys : unit -> string list;
  reg_collect : older_than:float -> int;
  reg_instances : unit -> int;
}

type ctx = {
  cfg : config;
  self : Types.proc_id;
  ch : Rchannel.t;
  fd : Fdetect.t;
  regs : registers;
  rd : Dbms.Stub.Readiness.t;
  rids : (int, rid_state) Hashtbl.t;
  sink : Rt.obs_sink option;  (** fetched once at spawn; None = obs off *)
}

let rid_state ctx rid =
  match Hashtbl.find_opt ctx.rids rid with
  | Some st -> st
  | None ->
      let st =
        {
          client = None;
          last = None;
          cleaned = [];
          terminated_at = None;
          rspan = 0;
        }
      in
      Hashtbl.replace ctx.rids rid st;
      st

(* Register names are namespaced by replica group: the consensus layer keys
   instances by these strings, so the prefix guarantees two shards' regA[j]
   / regD[j] arrays can never collide even if their traffic ever met (rids
   are also globally unique per runtime — the prefix makes the isolation
   syntactic rather than an accident of uid allocation). *)
let reg_a_name ~group rid = Printf.sprintf "g%d:regA:r%d" group rid

let reg_d_name ~group rid = Printf.sprintf "g%d:regD:r%d" group rid

let span ctx label f =
  match ctx.cfg.breakdown with
  | None -> f ()
  | Some bd -> Stats.Breakdown.span bd label f

(* Obs phase span around [f]. Deliberately NOT exception-safe: if the
   process crashes mid-phase the span must stay open — that is the signal a
   fail-over post-mortem looks for. *)
let ospan ctx ?(parent = 0) ~trace name f =
  match ctx.sink with
  | None -> f ()
  | Some s ->
      let id = s.Rt.obs_span_open ~parent ~trace name in
      let r = f () in
      s.Rt.obs_span_close id;
      r

(* ---------------- Fig. 4: terminate() ---------------- *)

let send_result ctx st ~rid ~j decision =
  match st.client with
  | None -> () (* client unknown here (it crashed before broadcasting) *)
  | Some c ->
      Rchannel.send ctx.ch c
        (Result_msg { rid; j; decision; group = ctx.cfg.group })

let terminate ctx st ?(parent = 0) ~rid ~j (decision : decision) =
  let tspan =
    match ctx.sink with
    | None -> 0
    | Some s ->
        let id = s.Rt.obs_span_open ~parent ~trace:rid "terminate" in
        s.Rt.obs_span_attr id "j" (string_of_int j);
        id
  in
  let xid = Dbms.Xid.make ~rid ~j in
  let (_ : (Types.proc_id * unit) list) =
    span ctx "commit" (fun () ->
        Dbms.Stub.broadcast_collect ~poll:ctx.cfg.poll ctx.ch ctx.rd
          ~dbs:ctx.cfg.dbs
          ~request:(fun _ ->
            Dbms.Msg.Decide { xid; outcome = decision.outcome })
          ~matches:(function
            | Dbms.Msg.Ack_decide { xid = x } when Dbms.Xid.equal x xid ->
                Some ()
            | _ -> None))
  in
  send_result ctx st ~rid ~j decision;
  (match st.last with
  | Some (j', _) when j' >= j -> ()
  | Some _ | None -> st.last <- Some (j, decision));
  st.terminated_at <- Some (Rt.now ());
  match ctx.sink with
  | None -> ()
  | Some s ->
      s.Rt.obs_count "server.terminated" 1;
      if decision.outcome = Dbms.Rm.Commit then
        s.Rt.obs_count "server.committed" 1;
      s.Rt.obs_span_close tspan

(* ---------------- Fig. 4: prepare() ---------------- *)

let prepare ctx ~xid =
  let votes =
    Dbms.Stub.broadcast_collect ~poll:ctx.cfg.poll ctx.ch ctx.rd
      ~dbs:ctx.cfg.dbs
      ~request:(fun _ -> Dbms.Msg.Prepare { xid })
      ~matches:(function
        | Dbms.Msg.Vote_msg { xid = x; vote } when Dbms.Xid.equal x xid ->
            Some vote
        | _ -> None)
  in
  if List.for_all (fun (_, v) -> v = Dbms.Rm.Yes) votes then Dbms.Rm.Commit
  else Dbms.Rm.Abort

(* ---------------- Fig. 5: the computation thread ---------------- *)

let xa_broadcast ctx ~xid ~label ~request ~matches =
  let (_ : (Types.proc_id * unit) list) =
    span ctx label (fun () ->
        Dbms.Stub.broadcast_collect ~poll:ctx.cfg.poll ctx.ch ctx.rd
          ~dbs:ctx.cfg.dbs ~request ~matches)
  in
  ignore xid

let run_business ctx ~xid ~attempt ~body =
  let exec ~db ops =
    Dbms.Stub.exec_retry ~poll:ctx.cfg.poll ~backoff:ctx.cfg.exec_backoff
      ctx.ch ctx.rd ~db ~xid ops
  in
  let context = { Business.xid; dbs = ctx.cfg.dbs; exec; attempt } in
  ctx.cfg.business.Business.run context ~body

let compute_try ctx st ~(request : request) ~j =
  let rid = request.rid in
  let xid = Dbms.Xid.make ~rid ~j in
  (* one "try" span per (rid, j) attempt on this server, parented under the
     client's propagated root span; phases hang off it *)
  let tspan =
    match ctx.sink with
    | None -> 0
    | Some s ->
        let id = s.Rt.obs_span_open ~parent:st.rspan ~trace:rid "try" in
        s.Rt.obs_span_attr id "j" (string_of_int j);
        id
  in
  (* elect the computing server for try j (regA write, "log-start") *)
  let winner =
    span ctx "log-start" (fun () ->
        ospan ctx ~parent:tspan ~trace:rid "election" (fun () ->
            ctx.regs.reg_write
              ~name:(reg_a_name ~group:ctx.cfg.group rid)
              ~j (Reg_a_value ctx.self)))
  in
  match winner with
  | Reg_a_value w when w = ctx.self ->
      ospan ctx ~parent:tspan ~trace:rid "compute" (fun () ->
          xa_broadcast ctx ~xid ~label:"start"
            ~request:(fun _ -> Dbms.Msg.Xa_start { xid })
            ~matches:(function
              | Dbms.Msg.Xa_started { xid = x } when Dbms.Xid.equal x xid ->
                  Some ()
              | _ -> None);
          let result =
            span ctx "SQL" (fun () ->
                run_business ctx ~xid ~attempt:j ~body:request.body)
          in
          Rt.note (Printf.sprintf "computed:%d:%d:%s" rid j result);
          xa_broadcast ctx ~xid ~label:"end"
            ~request:(fun _ -> Dbms.Msg.Xa_end { xid })
            ~matches:(function
              | Dbms.Msg.Xa_ended { xid = x } when Dbms.Xid.equal x xid ->
                  Some ()
              | _ -> None);
          result)
      |> fun result ->
      let outcome =
        span ctx "prepare" (fun () ->
            ospan ctx ~parent:tspan ~trace:rid "prepare" (fun () ->
                prepare ctx ~xid))
      in
      let proposal = { result = Some result; outcome } in
      let final =
        span ctx "log-outcome" (fun () ->
            ospan ctx ~parent:tspan ~trace:rid "consensus" (fun () ->
                match
                  ctx.regs.reg_write
                    ~name:(reg_d_name ~group:ctx.cfg.group rid)
                    ~j (Reg_d_value proposal)
                with
                | Reg_d_value d -> d
                | _ -> proposal))
      in
      terminate ctx st ~parent:tspan ~rid ~j final;
      (match ctx.sink with
      | None -> ()
      | Some s -> s.Rt.obs_span_close tspan)
  | Reg_a_value _ ->
      (* another server won the election: it (or the cleaning thread of a
         correct server) will terminate this try; the client's
         retransmission drives progress *)
      (match ctx.sink with
      | None -> ()
      | Some s ->
          s.Rt.obs_span_attr tspan "lost_election" "true";
          s.Rt.obs_span_close tspan)
  | _ -> ()

let compute_thread ctx () =
  let rec loop () =
    (match Rt.recv_cls cls_request with
    | None -> ()
    | Some m -> (
        match m.payload with
        | Request_msg { group; _ } when group <> ctx.cfg.group ->
            (* misrouted: addressed to another replica group; executing it
               here would commit the request on the wrong shard *)
            (match ctx.sink with
            | None -> ()
            | Some s -> s.Rt.obs_count "server.misrouted" 1);
            Rt.note
              (Printf.sprintf "misrouted:g%d:got-g%d" ctx.cfg.group group)
        | Request_msg { request; j; span; _ } -> (
            let st = rid_state ctx request.rid in
            if st.client = None then st.client <- Some m.src;
            if st.rspan = 0 then st.rspan <- span;
            match st.last with
            | Some (j', d) when j' = j ->
                (* retransmission of an already-terminated try *)
                send_result ctx st ~rid:request.rid ~j d
            | Some (j', _) when j' > j -> ()
            | Some _ | None -> compute_try ctx st ~request ~j)
        | _ -> ()));
    loop ()
  in
  loop ()

(* ---------------- Fig. 6: the cleaning thread ---------------- *)

let parse_reg_a_rid key =
  try Scanf.sscanf key "g%d:regA:r%d[" (fun _group rid -> Some rid) with
  | Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let known_rids ctx =
  let from_requests = Hashtbl.fold (fun rid _ acc -> rid :: acc) ctx.rids [] in
  let from_registers =
    List.filter_map parse_reg_a_rid (ctx.regs.reg_decided_keys ())
  in
  List.sort_uniq compare (from_requests @ from_registers)

let clean_request ctx ~suspect ~rid =
  let st = rid_state ctx rid in
  let group = ctx.cfg.group in
  let rec scan j =
    match ctx.regs.reg_read ~name:(reg_a_name ~group rid) ~j with
    | None -> () (* ⊥: no further tries exist (they start in order) *)
    | Some (Reg_a_value winner) ->
        if winner = suspect && not (List.mem j st.cleaned) then begin
          (* one "clean" span per taken-over try; [rspan] is known when this
             server saw the client's broadcast, else the span roots itself *)
          let cspan =
            match ctx.sink with
            | None -> 0
            | Some s ->
                let id =
                  s.Rt.obs_span_open ~parent:st.rspan ~trace:rid "clean"
                in
                s.Rt.obs_span_attr id "j" (string_of_int j);
                s.Rt.obs_span_attr id "suspect"
                  (ctx.cfg.rt.name_of suspect);
                id
          in
          let final =
            match
              ctx.regs.reg_write ~name:(reg_d_name ~group rid) ~j
                (Reg_d_value abort_decision)
            with
            | Reg_d_value d -> d
            | _ -> abort_decision
          in
          Rt.note
            (Printf.sprintf "cleaned:%d:%d:%s" rid j
               (match final.outcome with
               | Dbms.Rm.Commit -> "commit"
               | Dbms.Rm.Abort -> "abort"));
          (* abort-or-finish: the wo-register write either imposed the abort
             or lost to the crashed winner's already-decided outcome, which
             the cleaner then finishes delivering (paper Fig. 6) *)
          (match ctx.sink with
          | None -> ()
          | Some s ->
              s.Rt.obs_count
                (match final.outcome with
                | Dbms.Rm.Abort -> "cleaner.aborts"
                | Dbms.Rm.Commit -> "cleaner.finishes")
                1);
          terminate ctx st ~parent:cspan ~rid ~j final;
          (match ctx.sink with
          | None -> ()
          | Some s -> s.Rt.obs_span_close cspan);
          st.cleaned <- j :: st.cleaned
        end;
        scan (j + 1)
    | Some _ -> scan (j + 1)
  in
  scan 1

let clean_thread ctx () =
  let rec loop () =
    Rt.sleep ctx.cfg.clean_period;
    List.iter
      (fun ai ->
        if ai <> ctx.self && Fdetect.suspects ctx.fd ai then
          List.iter (fun rid -> clean_request ctx ~suspect:ai ~rid)
            (known_rids ctx))
      ctx.cfg.servers;
    loop ()
  in
  loop ()

(* ---------------- §5 extension: register garbage collection ----------- *)

(* Discard everything long-terminated requests left behind: protocol state
   for requests served here (by the termination timestamp) and register
   instances decided long ago (covers servers that only participated in the
   consensus). After this point a retransmission of the request is
   indistinguishable from a new one, so at-most-once only holds for clients
   that respect the grace period — the paper's timed caveat, demonstrated in
   the test suite. [gc_after] must comfortably exceed the fail-over
   (cleaning) latency so no live protocol activity references a collected
   register. *)
let gc_thread ctx ~after () =
  let rec loop () =
    Rt.sleep (Float.max 1. (after /. 2.));
    let now = Rt.now () in
    let expired =
      Hashtbl.fold
        (fun rid st acc ->
          match st.terminated_at with
          | Some t when now -. t > after -> rid :: acc
          | Some _ | None -> acc)
        ctx.rids []
    in
    List.iter (fun rid -> Hashtbl.remove ctx.rids rid) expired;
    let swept = ctx.regs.reg_collect ~older_than:(now -. after) in
    if expired <> [] || swept > 0 then
      Rt.note
        (Printf.sprintf "gc:rids=%d:swept=%d:instances=%d"
           (List.length expired) swept
           (ctx.regs.reg_instances ()));
    loop ()
  in
  loop ()

(* ---------------- Fig. 4: main() ---------------- *)

let spawn cfg =
  let name =
    if cfg.group = 0 then Printf.sprintf "a%d" (cfg.index + 1)
    else Printf.sprintf "g%d:a%d" cfg.group (cfg.index + 1)
  in
  cfg.rt.spawn ~name ~main:(fun ~recovery () ->
      if recovery && cfg.persist = None then
        (* the paper's base protocol assumes crashed application servers
           stay down (a majority is always up); rejoining with amnesia
           would be unsound, so a recovered diskless server stays passive *)
        Rt.note "appserver-recovery-unsupported"
      else begin
        if recovery then Rt.note "appserver-recovered";
        let ch = Rchannel.create () in
        Rchannel.start ch;
        let fd =
          match cfg.fd_spec with
          | Fd_oracle -> Fdetect.oracle cfg.rt
          | Fd_heartbeat { period; initial_timeout; timeout_bump } ->
              Fdetect.heartbeat ~period ~initial_timeout ~timeout_bump
                ~peers:cfg.servers ()
        in
        Fdetect.start fd;
        let regs =
          match cfg.backend with
          | Reg_ct ->
              let agent =
                Consensus.Agent.create ?persist:cfg.persist ~peers:cfg.servers
                  ~fd ~ch ()
              in
              Consensus.Agent.start agent;
              let key ~name ~j = Printf.sprintf "%s[%d]" name j in
              {
                reg_write =
                  (fun ~name ~j v ->
                    Consensus.Agent.propose agent ~key:(key ~name ~j) v);
                reg_read =
                  (fun ~name ~j ->
                    Consensus.Agent.peek agent ~key:(key ~name ~j));
                reg_decided_keys =
                  (fun () -> Consensus.Agent.decided_keys agent);
                reg_collect =
                  (fun ~older_than -> Consensus.Agent.collect agent ~older_than);
                reg_instances =
                  (fun () -> Consensus.Agent.instance_count agent);
              }
          | Reg_synod ->
              let synod = Consensus.Synod.create ~peers:cfg.servers ~ch () in
              Consensus.Synod.start synod;
              let key ~name ~j = Printf.sprintf "%s[%d]" name j in
              {
                reg_write =
                  (fun ~name ~j v ->
                    Consensus.Synod.propose synod ~key:(key ~name ~j) v);
                reg_read =
                  (fun ~name ~j ->
                    Consensus.Synod.peek synod ~key:(key ~name ~j));
                reg_decided_keys =
                  (fun () -> Consensus.Synod.decided_keys synod);
                reg_collect = (fun ~older_than:_ -> 0);
                reg_instances = (fun () -> 0);
              }
        in
        let rd = Dbms.Stub.Readiness.create ~dbs:cfg.dbs in
        Dbms.Stub.Readiness.start rd;
        let ctx =
          {
            cfg;
            self = Rt.self ();
            ch;
            fd;
            regs;
            rd;
            rids = Hashtbl.create 16;
            sink = Rt.obs ();
          }
        in
        Rt.fork "clean" (clean_thread ctx);
        (match cfg.gc_after with
        | Some after -> Rt.fork "gc" (gc_thread ctx ~after)
        | None -> ());
        compute_thread ctx ()
      end)
