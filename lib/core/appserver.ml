open Runtime
module Rt = Etx_runtime
open Dnet
open Etx_types

type fd_spec =
  | Fd_oracle
  | Fd_heartbeat of {
      period : float;
      initial_timeout : float;
      timeout_bump : float;
    }

type register_backend = Reg_ct | Reg_synod

(* Cross-shard commit wiring (DESIGN.md §15). [shard_of_key] is the
   cluster's routing map; [peers] names the application servers of a
   participant group (a function because the full cluster membership is
   only known after every group spawned). *)
type cross_cfg = {
  shard_of_key : string -> int;
  peers : int -> Types.proc_id list;
}

(* Elastic reconfiguration wiring (DESIGN.md §16). [cfg_group] is the
   group whose consensus decides the cfg:/mig: register sequences (group 0
   by convention); [rc_servers_of]/[rc_dbs_of] cover the whole provisioned
   cluster, spare groups included — functions because the full membership
   is only known after every group spawned. *)
type reconfig_cfg = {
  init_map : Shard_map.t;
  cfg_group : int;
  rc_groups : int;
  rc_servers_of : int -> Types.proc_id list;
  rc_dbs_of : int -> (Types.proc_id * string) list;
}

type config = {
  rt : Rt.t;  (** the execution substrate hosting this server *)
  group : int;
  index : int;
  servers : Types.proc_id list;
  dbs : Types.proc_id list;
  business : Business.t;
  fd_spec : fd_spec;
  clean_period : float;
  poll : float;
  exec_backoff : float;
  gc_after : float option;
  backend : register_backend;
  persist : Consensus.Agent.persistence option;
  breakdown : Stats.Breakdown.t option;
  batch : int;
      (** max results per leased batch; 1 = the classic per-result path *)
  cache : Method_cache.t option;
      (** method cache for read-only calls; [None] = caching off (the
          request path is then byte-identical to the uncached protocol) *)
  replicas : (unit -> (Types.proc_id * Types.proc_id list) list) option;
      (** per-database read replicas for cache-miss read-only calls;
          [None] = replica routing off (the request path is then
          byte-identical to the replica-less protocol). A thunk because
          replicas are spawned after the application servers. *)
  replica_bound : int;
      (** max provable staleness (LSN delta) tolerated on a replica read;
          a replica whose lag exceeds it answers stale and the request
          falls back to the primary pipeline *)
  replica_patience : float;
      (** how long a replica read may block before falling back to the
          primary pipeline (virtual ms) *)
  cross : cross_cfg option;
      (** cross-shard commit wiring; [None] = cross-shard requests cannot
          arise (the request path is then byte-identical to the
          single-shard protocol) *)
  reconfig : reconfig_cfg option;
      (** elastic reconfiguration; [None] = the map is fixed forever (no
          cfg fiber is forked and the request path stays byte-identical to
          the static protocol) *)
}

let config ?(fd_spec = Fd_oracle) ?(clean_period = 20.) ?(poll = 10.)
    ?(exec_backoff = 40.) ?gc_after ?(backend = Reg_ct) ?persist ?breakdown
    ?(group = 0) ?(batch = 1) ?cache ?replicas ?(replica_bound = 8) ?(replica_patience = 1_000.) ?cross ?reconfig ~rt ~index
    ~servers ~dbs ~business () =
  (match (backend, persist) with
  | Reg_synod, Some _ ->
      invalid_arg
        "Appserver.config: the Synod backend does not support persistence"
  | (Reg_ct | Reg_synod), _ -> ());
  if batch < 1 then invalid_arg "Appserver.config: batch must be >= 1";
  if batch > 1 && gc_after <> None then
    invalid_arg
      "Appserver.config: register GC is not supported on the batched path \
       (a collected lease or batch register would reopen a decided window)";
  {
    rt;
    group;
    index;
    servers;
    dbs;
    business;
    fd_spec;
    clean_period;
    poll;
    exec_backoff;
    gc_after;
    backend;
    persist;
    breakdown;
    batch;
    cache;
    replicas;
    replica_bound;
    replica_patience;
    cross;
    reconfig;
  }

(* Live reconfiguration state of one server: its current map view, and —
   while it belongs to a migration's source group — the target map it is
   sealed against. [driving] dedups driver fibers per target epoch (a
   re-sent [Mig_start] or a monitor tick must not fork a second driver for
   the same migration). *)
type rc_state = {
  mutable rc_map : Shard_map.t;
  mutable sealing : Shard_map.t option;
  driving : (int, unit) Hashtbl.t;
}

(* Per-request protocol state on one server. Everything here is volatile
   (servers are stateless): it only caches what the registers and client
   messages already determine. *)
type rid_state = {
  mutable client : Types.proc_id option;
  mutable last : (int * decision) option;  (** last terminated try here *)
  mutable seen : int;
      (** highest try number a client request carried here (0 = none):
          the cleaning scan's floor when the group's own regA array has
          holes — a re-routed request starts above 1 at its new group *)
  mutable cleaned : int list;  (** the paper's [clist], per request *)
  mutable terminated_at : float option;  (** for the GC grace period *)
  mutable rspan : int;
      (** the client's root span id, from the request message (0 = none);
          per-try and cleaner spans parent under it *)
}

(* The wo-register surface the protocol needs, abstracted over the two
   consensus backends. *)
type registers = {
  reg_write : name:string -> j:int -> Types.payload -> Types.payload;
  reg_read : name:string -> j:int -> Types.payload option;
  reg_decided_keys : unit -> string list;
  reg_collect : older_than:float -> int;
  reg_instances : unit -> int;
}

(* Per-request outcome of this server's replica attempt. [Replica_answered]
   replays the same answer to client retransmissions (at-most-once reply
   without another replica read); [Replica_declined] latches the request to
   the primary pipeline, where the registers dedupe retries cheaply.
   Without this memo every retransmission of a queued read costs a fresh
   replica SQL round plus a patience wait, and under load the duplicates
   arrive faster than they drain. *)
type replica_memo =
  | Replica_answered of string * int * int  (** result, lsn, lag *)
  | Replica_declined

type ctx = {
  cfg : config;
  self : Types.proc_id;
  ch : Rchannel.t;
  fd : Fdetect.t;
  regs : registers;
  rd : Dbms.Stub.Readiness.t;
  rids : (int, rid_state) Hashtbl.t;
  replica_memo : (int, replica_memo) Hashtbl.t;  (** by rid; replicas only *)
  gx_running : (int * int * int, unit) Hashtbl.t;
      (** cross-shard work in flight here, keyed (rid, j, k): branch
          executions ([k] = participant shard) and coordinator drives
          ([k] = -1). Purely a duplicate-suppression memo — the registers
          stay the safety argument *)
  rc : rc_state option;  (** reconfiguration state; None = map fixed *)
  sink : Rt.obs_sink option;  (** fetched once at spawn; None = obs off *)
}

let rid_state ctx rid =
  match Hashtbl.find_opt ctx.rids rid with
  | Some st -> st
  | None ->
      let st =
        {
          client = None;
          last = None;
          seen = 0;
          cleaned = [];
          terminated_at = None;
          rspan = 0;
        }
      in
      Hashtbl.replace ctx.rids rid st;
      st

let map_epoch ctx =
  match ctx.rc with None -> 0 | Some rc -> Shard_map.epoch rc.rc_map

(* Every bounce carries the server's map epoch: [0] on non-reconfigurable
   deployments (clients there never compare epochs), the live epoch
   otherwise — a client holding an older map refetches it and re-routes. *)
let send_nack ctx ~rid ~j ~client =
  Rchannel.send ctx.ch client
    (Result_nack_msg { rid; j; group = ctx.cfg.group; epoch = map_epoch ctx })

(* Reconfiguration intake guard, checked after the group stamp matched:
   bounce a request whose key this group does not own under the current
   map (the client is behind — its stamp only matched because it computed
   the same group from a stale map), or whose key the in-progress
   migration is taking away (sealed: admitting a fresh try would race the
   copy). Replays of already-terminated tries still answer — that is the
   exactly-once path for results committed here before the key moved. *)
let rc_bounced ctx ~(request : request) ~j ~client =
  match ctx.rc with
  | None -> false
  | Some rc ->
      let replayable =
        match Hashtbl.find_opt ctx.rids request.rid with
        | Some { last = Some (j', d); _ } ->
            (* an exact or older try replays its recorded decision; a
               terminated {e commit} replays for every later try too
               (commit is final — see the intake rule) *)
            j' >= j || d.outcome = Dbms.Rm.Commit
        | _ -> false
      in
      let foreign =
        Shard_map.shard_of rc.rc_map request.key <> ctx.cfg.group
      in
      let sealed_away =
        match rc.sealing with
        | Some target ->
            Shard_map.shard_of target request.key <> ctx.cfg.group
        | None -> false
      in
      if (foreign || sealed_away) && not replayable then begin
        (match ctx.sink with
        | None -> ()
        | Some s -> s.Rt.obs_count "migrate.bounced" 1);
        Rt.note
          (Printf.sprintf "bounced:g%d:e%d" ctx.cfg.group (map_epoch ctx));
        send_nack ctx ~rid:request.rid ~j ~client;
        true
      end
      else false

(* Register names are namespaced by replica group: the consensus layer keys
   instances by these strings, so the prefix guarantees two shards' regA[j]
   / regD[j] arrays can never collide even if their traffic ever met (rids
   are also globally unique per runtime — the prefix makes the isolation
   syntactic rather than an accident of uid allocation). The canonical
   encode/decode pair lives in {!Etx_types.Reg_name}. *)
let reg_a_name ~group rid = Reg_name.reg_a ~group ~rid

let reg_d_name ~group rid = Reg_name.reg_d ~group ~rid

let span ctx label f =
  match ctx.cfg.breakdown with
  | None -> f ()
  | Some bd -> Stats.Breakdown.span bd label f

(* Obs phase span around [f]. Deliberately NOT exception-safe: if the
   process crashes mid-phase the span must stay open — that is the signal a
   fail-over post-mortem looks for. *)
let ospan ctx ?(parent = 0) ~trace name f =
  match ctx.sink with
  | None -> f ()
  | Some s ->
      let id = s.Rt.obs_span_open ~parent ~trace name in
      let r = f () in
      s.Rt.obs_span_close id;
      r

(* ---------------- Method cache (DESIGN.md §13) ---------------- *)

let cache_count ctx name n =
  if n > 0 then
    match ctx.sink with None -> () | Some s -> s.Rt.obs_count name n

(* Serve a read-only request straight from the method cache; [true] iff a
   reply went out. A hit bypasses the whole pipeline — no election, no
   transaction, no [rid_state] (the request never existed as far as the
   registers are concerned); the client marks the delivered record as
   cached and the spec holds it to the cache-coherence obligation instead
   of A.1/exactly-once. *)
let serve_cached ctx ~(request : request) ~j ~client =
  match ctx.cfg.cache with
  | None -> false
  | Some cache ->
      ctx.cfg.business.Business.read_only request.body
      && begin
           let t0 = Rt.now () in
           match
             Method_cache.find cache ~label:ctx.cfg.business.Business.label
               ~body:request.body
           with
           | Some result ->
               Rchannel.send ctx.ch client
                 (Result_cached_msg
                    { rid = request.rid; j; result; group = ctx.cfg.group });
               (match ctx.sink with
               | None -> ()
               | Some s ->
                   s.Rt.obs_count "cache.hit" 1;
                   s.Rt.obs_observe "cache.hit_latency_ms" (Rt.now () -. t0));
               true
           | None ->
               (match ctx.sink with
               | None -> ()
               | Some s -> s.Rt.obs_count "cache.miss" 1);
               false
         end

(* ---------------- Replica reads (DESIGN.md §14) ---------------- *)

exception Replica_fallback

(* Serve a cache-miss read-only request on an asynchronous read replica;
   [true] iff a reply went out. The business logic runs against replica
   state: the exec closure sends [Replica_exec] instead of the primary's
   exec round, so the primary pays neither coordination nor SQL for the
   request. Anything that prevents an honest bounded-staleness answer —
   no replica for the database, a non-read op slipping through, replies
   from different LSN snapshots, a stale or refusing replica, a timeout —
   raises [Replica_fallback] and the request takes the normal pipeline.
   Replica results are NEVER written to the method cache: the cache holds
   committed-fresh values, a replica answers provably-stale ones, and
   laundering the latter into the former would break cache coherence. *)
let serve_replica ctx ~(request : request) ~j ~client =
  match ctx.cfg.replicas with
  | None -> false
  | Some _ when Hashtbl.mem ctx.replica_memo request.rid -> (
      match Hashtbl.find ctx.replica_memo request.rid with
      | Replica_declined -> false
      | Replica_answered (result, lsn, lag) ->
          (* replay the answer restamped with the incoming try — the
             client only accepts its current j *)
          Rchannel.send ctx.ch client
            (Result_replica_msg
               { rid = request.rid; j; result; lsn; lag; group = ctx.cfg.group });
          (match ctx.sink with
          | None -> ()
          | Some s -> s.Rt.obs_count "server.replica_replayed" 1);
          true)
  | Some replicas_of ->
      ctx.cfg.business.Business.read_only request.body
      && begin
           let rid = request.rid in
           let bound = ctx.cfg.replica_bound in
           let t0 = Rt.now () in
           let seq = ref 0 in
           let snapshot = ref None in
           (* (lsn, lag) all replies must agree on *)
           let chosen_db = ref None in
           let exec ~db ops =
             (match !chosen_db with
             | None -> chosen_db := Some db
             | Some d when d = db -> ()
             | Some _ ->
                 (* one record carries one (lsn, lag): a business method
                    spanning databases has no single provable snapshot *)
                 raise Replica_fallback);
             let replica =
               match List.assoc_opt db (replicas_of ()) with
               | None | Some [] -> raise Replica_fallback
               | Some rs -> List.nth rs (rid mod List.length rs)
             in
             let s = !seq in
             incr seq;
             Rchannel.send ctx.ch replica
               (Dbms.Msg.Replica_exec { rid; seq = s; ops; bound });
             let filter m =
               m.Types.src = replica
               &&
               match m.Types.payload with
               | Dbms.Msg.Replica_values { rid = r; seq = s'; _ }
               | Dbms.Msg.Replica_stale { rid = r; seq = s'; _ }
               | Dbms.Msg.Replica_refused { rid = r; seq = s' } ->
                   r = rid && s' = s
               | _ -> false
             in
             (* wait in poll slices like the primary exec path, but under
                a finite patience: a crashed replica must stall the
                request only briefly before it falls back, never blackhole
                it (replies are filtered by seq, so a late answer to an
                abandoned attempt is ignored) *)
             let deadline = Rt.now () +. ctx.cfg.replica_patience in
             let rec wait () =
               let left = deadline -. Rt.now () in
               if left <= 0. then raise Replica_fallback
               else
                 match
                   Rt.recv
                     ~timeout:(Float.min ctx.cfg.poll left)
                     ~cls:Dbms.Msg.cls_replica_reply ~filter ()
                 with
                 | None -> wait ()
                 | Some m -> m
             in
             let m = wait () in
             (match m.Types.payload with
             | Dbms.Msg.Replica_values { values; lsn; lag; _ } ->
                 (match !snapshot with
                 | None -> snapshot := Some (lsn, lag)
                 | Some (l, _) when l = lsn -> ()
                 | Some _ -> raise Replica_fallback);
                 Dbms.Rm.Exec_ok { values; business_ok = true }
             | Dbms.Msg.Replica_stale _ | Dbms.Msg.Replica_refused _ | _ ->
                 raise Replica_fallback)
           in
           match
             let xid = Dbms.Xid.make ~rid ~j in
             let context =
               { Business.xid; dbs = ctx.cfg.dbs; exec; attempt = j }
             in
             let result =
               ctx.cfg.business.Business.run context ~body:request.body
             in
             (* a transient error report is not a function of committed
                state (same rule as the cache fill): recompute it on the
                primary rather than stamping it with an LSN *)
             if not (ctx.cfg.business.Business.cacheable result) then
               raise Replica_fallback;
             (result, !snapshot)
           with
           | result, Some (lsn, lag) ->
               Hashtbl.replace ctx.replica_memo rid
                 (Replica_answered (result, lsn, lag));
               Rchannel.send ctx.ch client
                 (Result_replica_msg
                    { rid; j; result; lsn; lag; group = ctx.cfg.group });
               (match ctx.sink with
               | None -> ()
               | Some s ->
                   s.Rt.obs_count "server.replica_served" 1;
                   s.Rt.obs_observe "server.replica_latency_ms"
                     (Rt.now () -. t0));
               true
           | _result, None ->
               (* the business logic never read anything: serve it through
                  the normal pipeline rather than inventing a snapshot *)
               Hashtbl.replace ctx.replica_memo rid Replica_declined;
               false
           | exception Replica_fallback ->
               (* latch the request to the primary: a replica that was
                  stale, refusing or too slow once would eat another SQL
                  round and patience window on every retransmission *)
               Hashtbl.replace ctx.replica_memo rid Replica_declined;
               (match ctx.sink with
               | None -> ()
               | Some s -> s.Rt.obs_count "server.replica_fallback" 1);
               false
         end

(* After a try (or batch member) decides: fill the cache with a committed
   read-only result — guarded by the generation snapshot [gen] taken
   before the business logic read the database, so a fill can never
   outrace an invalidation for a write its snapshot predates — and, for
   write methods, eagerly drop local entries named by the declared write
   keyset. The database's authoritative [Invalidate] broadcast (derived
   from the actual workspace) follows on every commit; the eager drop
   merely closes the window in which this server could serve its own
   pre-commit value. *)
let cache_after_decide ctx ~body ~gen (final : decision) =
  match ctx.cfg.cache with
  | None -> ()
  | Some cache ->
      if final.outcome = Dbms.Rm.Commit then begin
        let b = ctx.cfg.business in
        if b.Business.read_only body then
          match final.result with
          | Some result when b.Business.cacheable result ->
              let reads = (b.Business.keys body).Business.reads in
              ignore
                (Method_cache.store cache ~generation:gen
                   ~label:b.Business.label ~body ~reads ~result)
          | Some _ | None ->
              (* a transient error report can commit (e.g. a fail-over
                 re-execution the database rejected) but is not a function
                 of committed state — deliver it, never cache it *)
              ()
        else
          let writes = (b.Business.keys body).Business.writes in
          if writes <> [] then
            cache_count ctx "cache.invalidate"
              (Method_cache.invalidate cache ~writes)
      end

let cache_generation ctx =
  match ctx.cfg.cache with
  | None -> 0
  | Some cache -> Method_cache.generation cache

(* Consume the databases' commit-piggybacked [Invalidate] broadcasts.
   Forked only when the cache is on — without it the class goes unread
   (and cache-less deployments never receive these messages at all). *)
let invalidate_thread ctx cache () =
  let rec loop () =
    (match Rt.recv_cls Dbms.Msg.cls_invalidate with
    | None -> ()
    | Some m -> (
        match m.payload with
        | Dbms.Msg.Invalidate { keys = [] } ->
            (* flush-all sentinel: a recovered database can no longer
               enumerate the write keysets of the commits it replayed *)
            cache_count ctx "cache.invalidate" (Method_cache.flush cache)
        | Dbms.Msg.Invalidate { keys } ->
            cache_count ctx "cache.invalidate"
              (Method_cache.invalidate cache ~writes:keys)
        | _ -> ()));
    loop ()
  in
  loop ()

(* ---------------- Fig. 4: terminate() ---------------- *)

let send_result ctx st ~rid ~j decision =
  match st.client with
  | None -> () (* client unknown here (it crashed before broadcasting) *)
  | Some c ->
      Rchannel.send ctx.ch c
        (Result_msg { rid; j; decision; group = ctx.cfg.group })

let terminate ctx st ?(parent = 0) ~rid ~j (decision : decision) =
  let tspan =
    match ctx.sink with
    | None -> 0
    | Some s ->
        let id = s.Rt.obs_span_open ~parent ~trace:rid "terminate" in
        s.Rt.obs_span_attr id "j" (string_of_int j);
        id
  in
  let xid = Dbms.Xid.make ~rid ~j in
  let (_ : (Types.proc_id * unit) list) =
    span ctx "commit" (fun () ->
        Dbms.Stub.broadcast_collect ~poll:ctx.cfg.poll ctx.ch ctx.rd
          ~dbs:ctx.cfg.dbs
          ~request:(fun _ ->
            Dbms.Msg.Decide { xid; outcome = decision.outcome })
          ~matches:(function
            | Dbms.Msg.Ack_decide { xid = x } when Dbms.Xid.equal x xid ->
                Some ()
            | _ -> None))
  in
  send_result ctx st ~rid ~j decision;
  (match st.last with
  | Some (j', _) when j' >= j -> ()
  | Some _ | None -> st.last <- Some (j, decision));
  st.terminated_at <- Some (Rt.now ());
  match ctx.sink with
  | None -> ()
  | Some s ->
      s.Rt.obs_count "server.terminated" 1;
      if decision.outcome = Dbms.Rm.Commit then
        s.Rt.obs_count "server.committed" 1;
      s.Rt.obs_span_close tspan

(* ---------------- Fig. 4: prepare() ---------------- *)

let prepare ctx ~xid =
  let votes =
    Dbms.Stub.broadcast_collect ~poll:ctx.cfg.poll ctx.ch ctx.rd
      ~dbs:ctx.cfg.dbs
      ~request:(fun _ -> Dbms.Msg.Prepare { xid })
      ~matches:(function
        | Dbms.Msg.Vote_msg { xid = x; vote } when Dbms.Xid.equal x xid ->
            Some vote
        | _ -> None)
  in
  if List.for_all (fun (_, v) -> v = Dbms.Rm.Yes) votes then Dbms.Rm.Commit
  else Dbms.Rm.Abort

(* ---------------- Fig. 5: the computation thread ---------------- *)

let xa_broadcast ctx ~xid ~label ~request ~matches =
  let (_ : (Types.proc_id * unit) list) =
    span ctx label (fun () ->
        Dbms.Stub.broadcast_collect ~poll:ctx.cfg.poll ctx.ch ctx.rd
          ~dbs:ctx.cfg.dbs ~request ~matches)
  in
  ignore xid

let run_business ctx ~xid ~attempt ~body =
  (* one exec-attempt counter per business run: every physical exec this
     try issues (across databases and conflict retries) gets a distinct
     sequence number, so a redelivered batch can never execute twice at
     the resource manager (Rm.exec_dedup) *)
  let seq = ref 0 in
  let fresh_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let exec ~db ops =
    Dbms.Stub.exec_retry ~poll:ctx.cfg.poll ~backoff:ctx.cfg.exec_backoff
      ~fresh_seq ctx.ch ctx.rd ~db ~xid ops
  in
  let context = { Business.xid; dbs = ctx.cfg.dbs; exec; attempt } in
  ctx.cfg.business.Business.run context ~body

let compute_try ctx st ~(request : request) ~j =
  let rid = request.rid in
  let xid = Dbms.Xid.make ~rid ~j in
  (* one "try" span per (rid, j) attempt on this server, parented under the
     client's propagated root span; phases hang off it *)
  let tspan =
    match ctx.sink with
    | None -> 0
    | Some s ->
        let id = s.Rt.obs_span_open ~parent:st.rspan ~trace:rid "try" in
        s.Rt.obs_span_attr id "j" (string_of_int j);
        id
  in
  (* elect the computing server for try j (regA write, "log-start") *)
  let winner =
    span ctx "log-start" (fun () ->
        ospan ctx ~parent:tspan ~trace:rid "election" (fun () ->
            ctx.regs.reg_write
              ~name:(reg_a_name ~group:ctx.cfg.group rid)
              ~j (Reg_a_value ctx.self)))
  in
  match winner with
  | Reg_a_value w when w = ctx.self ->
      (* snapshot before the business logic reads anything: a fill is only
         accepted if no invalidation intervened (see cache_after_decide) *)
      let gen = cache_generation ctx in
      ospan ctx ~parent:tspan ~trace:rid "compute" (fun () ->
          xa_broadcast ctx ~xid ~label:"start"
            ~request:(fun _ -> Dbms.Msg.Xa_start { xid })
            ~matches:(function
              | Dbms.Msg.Xa_started { xid = x } when Dbms.Xid.equal x xid ->
                  Some ()
              | _ -> None);
          let result =
            span ctx "SQL" (fun () ->
                run_business ctx ~xid ~attempt:j ~body:request.body)
          in
          Rt.note (Printf.sprintf "computed:%d:%d:%s" rid j result);
          xa_broadcast ctx ~xid ~label:"end"
            ~request:(fun _ -> Dbms.Msg.Xa_end { xid })
            ~matches:(function
              | Dbms.Msg.Xa_ended { xid = x } when Dbms.Xid.equal x xid ->
                  Some ()
              | _ -> None);
          result)
      |> fun result ->
      let outcome =
        span ctx "prepare" (fun () ->
            ospan ctx ~parent:tspan ~trace:rid "prepare" (fun () ->
                prepare ctx ~xid))
      in
      let proposal = { result = Some result; outcome } in
      let final =
        span ctx "log-outcome" (fun () ->
            ospan ctx ~parent:tspan ~trace:rid "consensus" (fun () ->
                match
                  ctx.regs.reg_write
                    ~name:(reg_d_name ~group:ctx.cfg.group rid)
                    ~j (Reg_d_value proposal)
                with
                | Reg_d_value d -> d
                | _ -> proposal))
      in
      terminate ctx st ~parent:tspan ~rid ~j final;
      cache_after_decide ctx ~body:request.body ~gen final;
      (match ctx.sink with
      | None -> ()
      | Some s -> s.Rt.obs_span_close tspan)
  | Reg_a_value _ ->
      (* another server won the election: it (or the cleaning thread of a
         correct server) will terminate this try; the client's
         retransmission drives progress *)
      (match ctx.sink with
      | None -> ()
      | Some s ->
          s.Rt.obs_span_attr tspan "lost_election" "true";
          s.Rt.obs_span_close tspan)
  | _ -> ()

(* ---------------- DESIGN.md §15: cross-shard commit ---------------- *)

(* Participant shards of a request, when the deployment and the business
   method both opt into cross-shard commit AND the declared keyset actually
   spans several replica groups. [None] sends the request down the classic
   path before any cross-shard code runs — co-located requests stay
   record-for-record identical to the single-shard protocol. *)
let cross_shards ctx ~body =
  match (ctx.cfg.cross, ctx.cfg.business.Business.cross) with
  | Some cc, Some _ -> (
      let ks = ctx.cfg.business.Business.keys body in
      match
        List.sort_uniq compare
          (List.map cc.shard_of_key (ks.Business.reads @ ks.Business.writes))
      with
      | _ :: _ :: _ as shards -> Some shards
      | _ -> None)
  | _ -> None

(* Merge the plan's [(anchor, ops)] entries into one branch per shard
   (first-appearance order), keeping the entries so the branch's reply can
   be split back per anchor. *)
let branches_of_plan cc entries =
  let tbl = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun ((anchor, _) as entry) ->
      let k = cc.shard_of_key anchor in
      match Hashtbl.find_opt tbl k with
      | None ->
          order := k :: !order;
          Hashtbl.replace tbl k [ entry ]
      | Some es -> Hashtbl.replace tbl k (entry :: es))
    entries;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let rec split_at n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: rest ->
        let a, b = split_at (n - 1) rest in
        (x :: a, b)

(* A branch's [values] are its [Get] results in merged-op order; hand each
   plan entry its slice so [finish] sees replies keyed by anchor. *)
let entry_replies ~ok entries values =
  let gets ops =
    List.length
      (List.filter (function Dbms.Rm.Get _ -> true | _ -> false) ops)
  in
  let _, acc =
    List.fold_left
      (fun (values, acc) (anchor, ops) ->
        let mine, rest = split_at (gets ops) values in
        (rest, (anchor, { Business.ok; values = mine }) :: acc))
      (values, []) entries
  in
  List.rev acc

(* Execute one branch of global transaction (rid, j) at this shard, exactly
   as the classic pipeline executes a try: XA start round, transactional
   exec at the first database, XA end, then prepare across every database
   of the group. Returns the vote this shard should cast — [true] only if
   every database prepared, so a [Gx_vote_value {ok = true}] register can
   never meet an unprepared database. Never touches the vote register
   itself: callers own the decisive write (and must handle losing it). *)
let run_branch ctx ~rid ~j ~ops =
  let xid = Dbms.Xid.make ~rid ~j in
  xa_broadcast ctx ~xid ~label:"start"
    ~request:(fun _ -> Dbms.Msg.Xa_start { xid })
    ~matches:(function
      | Dbms.Msg.Xa_started { xid = x } when Dbms.Xid.equal x xid -> Some ()
      | _ -> None);
  let seq = ref 0 in
  let fresh_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let db = List.hd ctx.cfg.dbs in
  let reply =
    span ctx "SQL" (fun () ->
        Dbms.Stub.exec_retry ~poll:ctx.cfg.poll ~backoff:ctx.cfg.exec_backoff
          ~fresh_seq ctx.ch ctx.rd ~db ~xid ops)
  in
  let ok, values =
    match reply with
    | Dbms.Rm.Exec_ok { values; business_ok } -> (business_ok, values)
    | Dbms.Rm.Exec_conflict _ | Dbms.Rm.Exec_rejected -> (false, [])
  in
  xa_broadcast ctx ~xid ~label:"end"
    ~request:(fun _ -> Dbms.Msg.Xa_end { xid })
    ~matches:(function
      | Dbms.Msg.Xa_ended { xid = x } when Dbms.Xid.equal x xid -> Some ()
      | _ -> None);
  (* a failed branch skips prepare: its vote is No either way, and the
     global Decide(Abort) round releases whatever the exec locked *)
  let ok = ok && prepare ctx ~xid = Dbms.Rm.Commit in
  (ok, values)

(* Ask the servers of shard [k] — round-robin, resending every clean
   period (the handler side is idempotent) — until one replies branch
   [k]'s decided vote. *)
let gx_vote_rpc ctx (cc : cross_cfg) ~rid ~j ~k ~make =
  let peers = cc.peers k in
  let filter m =
    match m.Types.payload with
    | Gx_voted { rid = r; j = j'; k = k'; _ } -> r = rid && j' = j && k' = k
    | _ -> false
  in
  let rec loop i =
    Rchannel.send ctx.ch (List.nth peers (i mod List.length peers)) (make ());
    match
      Rt.recv ~timeout:ctx.cfg.clean_period ~cls:cls_gx_reply ~filter ()
    with
    | Some { Types.payload = Gx_voted { ok; values; _ }; _ } -> (ok, values)
    | Some _ | None -> loop (i + 1)
  in
  if peers = [] then (false, []) else loop 0

(* Decide the global outcome at shard [k]'s databases, resending until any
   server of the group acknowledges (the Decide round is idempotent). *)
let gx_complete_rpc ctx (cc : cross_cfg) ~rid ~j ~k ~outcome =
  let peers = cc.peers k in
  let filter m =
    match m.Types.payload with
    | Gx_completed { rid = r; j = j'; k = k' } -> r = rid && j' = j && k' = k
    | _ -> false
  in
  let rec loop i =
    Rchannel.send ctx.ch
      (List.nth peers (i mod List.length peers))
      (Gx_complete { rid; j; k; outcome });
    match
      Rt.recv ~timeout:ctx.cfg.clean_period ~cls:cls_gx_reply ~filter ()
    with
    | Some _ -> ()
    | None -> loop (i + 1)
  in
  if peers <> [] then loop 0

(* The coordinator's own branch: elect the executor through the gx_exec
   register like any participant would, run it on a win, and read the vote
   register out. Losing the election means a takeover already claimed the
   branch — wait the register out, contesting only if the claimant dies. *)
let local_branch_vote ctx ~rid ~j ~k ~ops =
  let name = Reg_name.gx_vote ~rid ~j ~k in
  let decided = function
    | Gx_vote_value { ok; values } -> (ok, values)
    | _ -> (false, [])
  in
  match ctx.regs.reg_read ~name ~j:0 with
  | Some v -> decided v
  | None -> (
      match
        ctx.regs.reg_write
          ~name:(Reg_name.gx_exec ~rid ~j ~k)
          ~j:0 (Reg_a_value ctx.self)
      with
      | Reg_a_value w when w = ctx.self ->
          let ok, values = run_branch ctx ~rid ~j ~ops in
          decided (ctx.regs.reg_write ~name ~j:0 (Gx_vote_value { ok; values }))
      | Reg_a_value w ->
          let rec wait () =
            match ctx.regs.reg_read ~name ~j:0 with
            | Some v -> decided v
            | None ->
                if Fdetect.suspects ctx.fd w then
                  decided
                    (ctx.regs.reg_write ~name ~j:0
                       (Gx_vote_value { ok = false; values = [] }))
                else begin
                  Rt.sleep ctx.cfg.poll;
                  wait ()
                end
          in
          wait ()
      | _ -> (false, []))

(* Deliver a cross-shard decision on a server whose own group was not a
   participant: everything [terminate] does except the local Decide round
   (these databases never saw the transaction; deciding it here would
   record a spurious outcome for the xid). *)
let deliver_no_local ctx st ~rid ~j (final : decision) =
  send_result ctx st ~rid ~j final;
  (match st.last with
  | Some (j', _) when j' >= j -> ()
  | Some _ | None -> st.last <- Some (j, final));
  st.terminated_at <- Some (Rt.now ());
  match ctx.sink with
  | None -> ()
  | Some s ->
      s.Rt.obs_count "server.terminated" 1;
      if final.outcome = Dbms.Rm.Commit then s.Rt.obs_count "server.committed" 1

(* Drive a Paxos-Commit instance to its outcome and completion: collect
   every participant's vote register concurrently ([vote_for] says how —
   the coordinator executes branches, the takeover cleaner contests), fold
   the global outcome (commit iff EVERY branch voted yes), complete every
   participant shard, and deliver. Shared by the coordinator pipeline and
   the cleaner precisely because both must derive the identical decision
   from the same write-once registers. *)
let drive_cross ctx st ~rid ~j ~body ~parent ~vote_for =
  let cc = Option.get ctx.cfg.cross in
  let cross = Option.get ctx.cfg.business.Business.cross in
  let entries = cross.Business.plan ~attempt:j ~body in
  let branches = branches_of_plan cc entries in
  let n = List.length branches in
  let votes = Array.make n None in
  List.iteri
    (fun i (k, bentries) ->
      let ops = List.concat_map snd bentries in
      Rt.fork "gx-vote" (fun () -> votes.(i) <- Some (vote_for ~k ~ops)))
    branches;
  while Array.exists Option.is_none votes do
    Rt.sleep 1.
  done;
  let votes = Array.to_list votes |> List.map Option.get in
  let outcome =
    if List.for_all (fun (ok, _) -> ok) votes then Dbms.Rm.Commit
    else Dbms.Rm.Abort
  in
  (match ctx.sink with
  | None -> ()
  | Some s ->
      List.iter
        (fun (ok, _) ->
          s.Rt.obs_count (if ok then "gx.vote.yes" else "gx.vote.no") 1)
        votes;
      s.Rt.obs_count
        (match outcome with
        | Dbms.Rm.Commit -> "gx.commit"
        | Dbms.Rm.Abort -> "gx.abort")
        1;
      if outcome = Dbms.Rm.Commit then
        s.Rt.obs_observe "commit.participants" (float_of_int n));
  let result =
    match outcome with
    | Dbms.Rm.Abort -> None
    | Dbms.Rm.Commit ->
        let replies =
          List.concat
            (List.map2
               (fun (_, bentries) (ok, values) ->
                 entry_replies ~ok bentries values)
               branches votes)
        in
        let r = cross.Business.finish ~attempt:j ~body ~replies in
        (* the V.1 obligation: a delivered result must have been computed —
           [finish] is pure, so every driver emits the identical note *)
        Rt.note (Printf.sprintf "computed:%d:%d:%s" rid j r);
        Some r
  in
  let final = { result; outcome } in
  let remote = List.filter (fun (k, _) -> k <> ctx.cfg.group) branches in
  let dones = Array.make (List.length remote) false in
  List.iteri
    (fun i (k, _) ->
      Rt.fork "gx-finish" (fun () ->
          gx_complete_rpc ctx cc ~rid ~j ~k ~outcome;
          dones.(i) <- true))
    remote;
  while Array.exists not dones do
    Rt.sleep 1.
  done;
  if List.mem_assoc ctx.cfg.group branches then
    terminate ctx st ~parent ~rid ~j final
  else deliver_no_local ctx st ~rid ~j final;
  final

(* The cross-shard fork of the computation pipeline: same regA[j] election
   as the classic path, but the register's content is a [Gx_elect] carrying
   the participant set and the request body — everything a cleaner needs to
   recompute the plan and finish the instance without the crashed owner. *)
let compute_try_cross ctx st ~(request : request) ~j ~shards =
  let rid = request.rid in
  let tspan =
    match ctx.sink with
    | None -> 0
    | Some s ->
        let id = s.Rt.obs_span_open ~parent:st.rspan ~trace:rid "try" in
        s.Rt.obs_span_attr id "j" (string_of_int j);
        s.Rt.obs_span_attr id "cross" "true";
        id
  in
  let winner =
    span ctx "log-start" (fun () ->
        ospan ctx ~parent:tspan ~trace:rid "election" (fun () ->
            ctx.regs.reg_write
              ~name:(reg_a_name ~group:ctx.cfg.group rid)
              ~j
              (Gx_elect
                 { owner = ctx.self; participants = shards; body = request.body })))
  in
  match winner with
  | Gx_elect { owner; _ } when owner = ctx.self ->
      (match ctx.sink with
      | None -> ()
      | Some s ->
          s.Rt.obs_count "txn.cross_shard" 1;
          s.Rt.obs_count "gx.open" 1);
      let (_ : decision) =
        drive_cross ctx st ~rid ~j ~body:request.body ~parent:tspan
          ~vote_for:(fun ~k ~ops ->
            if k = ctx.cfg.group then local_branch_vote ctx ~rid ~j ~k ~ops
            else
              gx_vote_rpc ctx
                (Option.get ctx.cfg.cross)
                ~rid ~j ~k
                ~make:(fun () -> Gx_branch { rid; j; k; ops }))
      in
      (match ctx.sink with
      | None -> ()
      | Some s -> s.Rt.obs_span_close tspan)
  | Gx_elect _ | Reg_a_value _ ->
      (* lost the election: the winner (or the cleaning thread of a correct
         server) drives this try; the client's retransmission makes
         progress observable *)
      (match ctx.sink with
      | None -> ()
      | Some s ->
          s.Rt.obs_span_attr tspan "lost_election" "true";
          s.Rt.obs_span_close tspan)
  | _ -> ()

(* Participant-side branch execution, triggered by a (re)sent [Gx_branch].
   The quick checks run synchronously — the running-mark check-and-set must
   not be separated from the fork by a suspension point, or two resends
   could both elect — and the blocking work runs in its own fiber so one
   slow branch never heads-of-line-blocks the gx mailbox. *)
let gx_branch_handle ctx ~src ~rid ~j ~k ~ops =
  let name = Reg_name.gx_vote ~rid ~j ~k in
  let reply (ok, values) =
    Rchannel.send ctx.ch src (Gx_voted { rid; j; k; ok; values })
  in
  match ctx.regs.reg_read ~name ~j:0 with
  | Some (Gx_vote_value { ok; values }) -> reply (ok, values)
  | Some _ -> ()
  | None ->
      if not (Hashtbl.mem ctx.gx_running (rid, j, k)) then begin
        Hashtbl.replace ctx.gx_running (rid, j, k) ();
        Rt.fork "gx-branch" (fun () ->
            Fun.protect
              ~finally:(fun () -> Hashtbl.remove ctx.gx_running (rid, j, k))
              (fun () ->
                match
                  ctx.regs.reg_write
                    ~name:(Reg_name.gx_exec ~rid ~j ~k)
                    ~j:0 (Reg_a_value ctx.self)
                with
                | Reg_a_value w when w = ctx.self ->
                    let ok, values = run_branch ctx ~rid ~j ~ops in
                    (match
                       ctx.regs.reg_write ~name ~j:0
                         (Gx_vote_value { ok; values })
                     with
                    | Gx_vote_value { ok; values } -> reply (ok, values)
                    | _ -> ())
                | Reg_a_value w -> (
                    (* another server of this group executes the branch *)
                    match ctx.regs.reg_read ~name ~j:0 with
                    | Some (Gx_vote_value { ok; values }) -> reply (ok, values)
                    | Some _ -> ()
                    | None ->
                        if Fdetect.suspects ctx.fd w then (
                          match
                            ctx.regs.reg_write ~name ~j:0
                              (Gx_vote_value { ok = false; values = [] })
                          with
                          | Gx_vote_value { ok; values } -> reply (ok, values)
                          | _ -> ())
                        (* else: the elected executor is alive and will
                           decide the register; stay silent — the driver's
                           resend retries *))
                | _ -> ()))
      end

(* Serve the cross-shard RPC surface of this group: branch execution,
   takeover contests, and completion. Forked only on cross-enabled
   deployments — without it the gx classes go unread (and cross-less
   deployments never receive these messages at all). *)
let gx_thread ctx () =
  let rec loop () =
    (match Rt.recv_cls cls_gx with
    | None -> ()
    | Some m -> (
        match m.payload with
        | Gx_branch { rid; j; k; ops } when k = ctx.cfg.group ->
            gx_branch_handle ctx ~src:m.src ~rid ~j ~k ~ops
        | Gx_resolve { rid; j; k } when k = ctx.cfg.group ->
            let src = m.src in
            Rt.fork "gx-resolve" (fun () ->
                match
                  ctx.regs.reg_write
                    ~name:(Reg_name.gx_vote ~rid ~j ~k)
                    ~j:0
                    (Gx_vote_value { ok = false; values = [] })
                with
                | Gx_vote_value { ok; values } ->
                    Rchannel.send ctx.ch src (Gx_voted { rid; j; k; ok; values })
                | _ -> ())
        | Gx_complete { rid; j; k; outcome } when k = ctx.cfg.group ->
            let src = m.src in
            Rt.fork "gx-complete" (fun () ->
                let xid = Dbms.Xid.make ~rid ~j in
                let (_ : (Types.proc_id * unit) list) =
                  Dbms.Stub.broadcast_collect ~poll:ctx.cfg.poll ctx.ch ctx.rd
                    ~dbs:ctx.cfg.dbs
                    ~request:(fun _ -> Dbms.Msg.Decide { xid; outcome })
                    ~matches:(function
                      | Dbms.Msg.Ack_decide { xid = x }
                        when Dbms.Xid.equal x xid ->
                          Some ()
                      | _ -> None)
                in
                (match ctx.sink with
                | None -> ()
                | Some s -> s.Rt.obs_count "gx.complete" 1);
                Rchannel.send ctx.ch src (Gx_completed { rid; j; k }))
        | _ -> () (* stamped for another shard: the driver's rotation moves on *)));
    loop ()
  in
  loop ()

(* ---------------- Elastic reconfiguration (DESIGN.md §16) ----------------

   The cfg fiber below — forked only on reconfigurable deployments — is
   every server's view of the epoch-versioned map: it answers map queries,
   adopts newer maps from announcements, seals this group during a
   migration, and serves the driver's decision-transfer scans. Config-group
   servers additionally host the {!Reconfig.Driver} itself (on [Mig_start])
   and a takeover monitor that re-drives a migration whose decided intent
   names a suspected owner. *)

let rc_epoch_gauge ctx rc =
  match ctx.sink with
  | None -> ()
  | Some s ->
      s.Rt.obs_gauge "reconfig.epoch"
        (float_of_int (Shard_map.epoch rc.rc_map))

let rc_adopt ctx rc map =
  if Shard_map.epoch map > Shard_map.epoch rc.rc_map then begin
    rc.rc_map <- map;
    (* the flip that moved our keys also releases the seal: the map now
       bounces what the seal bounced (and replays still answer) *)
    (match rc.sealing with
    | Some target when Shard_map.epoch target <= Shard_map.epoch map ->
        rc.sealing <- None
    | Some _ | None -> ());
    Rt.note
      (Printf.sprintf "adopt-map:g%d:e%d" ctx.cfg.group (Shard_map.epoch map));
    rc_epoch_gauge ctx rc
  end

(* Every terminated (rid, j, result, outcome) this server can prove: its
   own request states, plus the decided regD registers of its group — the
   latter cover tries terminated by servers that have since crashed (CT
   consensus decides at every correct process, so the survivors' agents
   know those decisions even though the rid states died with the server).
   Per rid only the highest terminated j matters: the client is past the
   lower ones. *)
let rc_decisions ctx =
  let best = Hashtbl.create 16 in
  let add rid j (d : decision) =
    match Hashtbl.find_opt best rid with
    | Some (j', _) when j' >= j -> ()
    | _ -> Hashtbl.replace best rid (j, d)
  in
  Hashtbl.iter
    (fun rid st ->
      match st.last with Some (j, d) -> add rid j d | None -> ())
    ctx.rids;
  List.iter
    (fun key ->
      match Reg_name.parse_reg_d key with
      | Some (g, rid, j) when g = ctx.cfg.group -> (
          match ctx.regs.reg_read ~name:(reg_d_name ~group:g rid) ~j with
          | Some (Reg_d_value d) -> add rid j d
          | _ -> ())
      | _ -> ())
    (ctx.regs.reg_decided_keys ());
  Hashtbl.fold
    (fun rid (j, d) acc -> (rid, j, d.result, d.outcome) :: acc)
    best []

(* Pre-seed a destination server with the source group's terminated tries:
   a cross-flip retransmission of (rid, j) then replays the recorded
   decision instead of re-executing an already-committed transaction.
   Never regresses a newer local termination. *)
let rc_install ctx items =
  List.iter
    (fun (rid, j, result, outcome) ->
      let st = rid_state ctx rid in
      match st.last with
      | Some (j', _) when j' >= j -> ()
      | _ ->
          st.last <- Some (j, { result; outcome });
          st.terminated_at <- Some (Rt.now ()))
    items

let rc_caps ctx (rcc : reconfig_cfg) =
  {
    Reconfig.Driver.self = ctx.self;
    ch = ctx.ch;
    propose = (fun ~key v -> ctx.regs.reg_write ~name:key ~j:0 v);
    peek = (fun ~key -> ctx.regs.reg_read ~name:key ~j:0);
    suspected = (fun p -> Fdetect.suspects ctx.fd p);
    servers_of = rcc.rc_servers_of;
    dbs_of = rcc.rc_dbs_of;
    poll = ctx.cfg.poll;
    sink = ctx.sink;
  }

let rc_drive ctx rc rcc ~target =
  let e = Shard_map.epoch target in
  if e = Shard_map.epoch rc.rc_map + 1 && not (Hashtbl.mem rc.driving e) then begin
    Hashtbl.replace rc.driving e ();
    let from = rc.rc_map in
    Rt.fork "mig-drive" (fun () ->
        Reconfig.Driver.run (rc_caps ctx rcc) ~from ~target;
        (* the announce also reaches this server's own cfg fiber, but
           adopt directly so a self-delivery hiccup cannot leave the
           driver's host behind its own flip *)
        rc_adopt ctx rc target)
  end

let cfg_thread ctx rc (rcc : reconfig_cfg) () =
  let rec loop () =
    (match Rt.recv_cls Reconfig.Rmsg.cls_cfg with
    | None -> ()
    | Some m -> (
        match m.payload with
        | Reconfig.Rmsg.Cfg_query _ ->
            (* always answer with the current map: the asker filters by
               epoch, and an unconditional reply lets the operator poll
               for completion with the same message *)
            Rchannel.send ctx.ch m.src
              (Reconfig.Rmsg.Cfg_current { map = rc.rc_map })
        | Reconfig.Rmsg.Cfg_announce { map } -> rc_adopt ctx rc map
        | Reconfig.Rmsg.Mig_start { target } ->
            (* only the config group hosts drivers: the cfg:/mig:
               registers live in its consensus namespace *)
            if ctx.cfg.group = rcc.cfg_group then rc_drive ctx rc rcc ~target
        | Reconfig.Rmsg.Mig_seal { target } ->
            let e = Shard_map.epoch target in
            if
              e > Shard_map.epoch rc.rc_map
              && (match rc.sealing with
                 | Some t -> Shard_map.epoch t < e
                 | None -> true)
            then rc.sealing <- Some target;
            Rchannel.send ctx.ch m.src
              (Reconfig.Rmsg.Mig_sealed { epoch = e; from = ctx.cfg.group })
        | Reconfig.Rmsg.Mig_decisions_req { epoch } ->
            Rchannel.send ctx.ch m.src
              (Reconfig.Rmsg.Mig_decisions { epoch; items = rc_decisions ctx })
        | Reconfig.Rmsg.Mig_install { epoch; items } ->
            rc_install ctx items;
            Rchannel.send ctx.ch m.src (Reconfig.Rmsg.Mig_installed { epoch })
        | _ -> ()));
    loop ()
  in
  loop ()

(* Config-group takeover monitor: a migration must complete even if every
   server that was driving it crashed. The decided [mig:e<n+1>] intent is
   the whole recovery plan — when its owner is suspected and the flip is
   still undecided, any config-group server re-drives the identical,
   idempotent pipeline. Also adopts (and re-announces) a flip this server
   somehow missed. *)
let rc_monitor ctx rc rcc () =
  let rec loop () =
    Rt.sleep ctx.cfg.clean_period;
    let caps = rc_caps ctx rcc in
    let e = Shard_map.epoch rc.rc_map + 1 in
    (match caps.Reconfig.Driver.peek ~key:(Reconfig.Rmsg.cfg_key ~epoch:e) with
    | Some (Reconfig.Rmsg.Cfg_value map) ->
        rc_adopt ctx rc map;
        Reconfig.Driver.announce caps ~target:map
    | _ -> (
        match
          caps.Reconfig.Driver.peek ~key:(Reconfig.Rmsg.mig_key ~epoch:e)
        with
        | Some (Reconfig.Rmsg.Mig_intent { owner; target })
          when owner <> ctx.self && Fdetect.suspects ctx.fd owner ->
            rc_drive ctx rc rcc ~target
        | _ -> ()));
    loop ()
  in
  loop ()

(* Map anti-entropy for servers outside the config group. They cannot
   peek the cfg:/mig: registers (those live in the config group's
   consensus namespace) and otherwise learn of a flip only through the
   one-shot [Cfg_announce] broadcast — lose that message and the server
   bounces keys it now owns forever, with an epoch too stale for any
   client to act on. Periodically ask the config group whether a newer
   map exists and adopt it; no other fiber on these servers consumes the
   cfg-reply class, so the recv cannot steal a driver's acks. Pure
   anti-entropy repairing a rare loss, so the period is deliberately
   lazy — bounces keep answering meanwhile and the serving path never
   waits on this fiber. *)
let rc_refresh ctx rc (rcc : reconfig_cfg) () =
  let rec loop () =
    Rt.sleep (25. *. ctx.cfg.clean_period);
    let have = Shard_map.epoch rc.rc_map in
    Rchannel.broadcast ctx.ch
      (rcc.rc_servers_of rcc.cfg_group)
      (Reconfig.Rmsg.Cfg_query { have });
    let deadline = Rt.now () +. ctx.cfg.poll in
    let rec drain () =
      if Rt.now () < deadline then begin
        (match
           Rt.recv
             ~timeout:(deadline -. Rt.now ())
             ~cls:Reconfig.Rmsg.cls_cfg_reply
             ~filter:(fun m ->
               match m.Types.payload with
               | Reconfig.Rmsg.Cfg_current _ -> true
               | _ -> false)
             ()
         with
        | Some { Types.payload = Reconfig.Rmsg.Cfg_current { map }; _ } ->
            rc_adopt ctx rc map
        | Some _ | None -> ());
        drain ()
      end
    in
    drain ();
    loop ()
  in
  loop ()

let compute_thread ctx () =
  let rec loop () =
    (match Rt.recv_cls cls_request with
    | None -> ()
    | Some m -> (
        match m.payload with
        | Request_msg { request; j; group; _ } when group <> ctx.cfg.group ->
            (* misrouted: addressed to another replica group; executing it
               here would commit the request on the wrong shard. Bounce it
               explicitly so the client re-fans out immediately instead of
               waiting out its resend timer *)
            (match ctx.sink with
            | None -> ()
            | Some s -> s.Rt.obs_count "server.misrouted" 1);
            Rt.note
              (Printf.sprintf "misrouted:g%d:got-g%d" ctx.cfg.group group);
            send_nack ctx ~rid:request.rid ~j ~client:m.src
        | Request_msg { request; j; _ }
          when rc_bounced ctx ~request ~j ~client:m.src ->
            ()
        | Request_msg { request; j; span; _ } ->
            if
              (not (serve_cached ctx ~request ~j ~client:m.src))
              && not (serve_replica ctx ~request ~j ~client:m.src)
            then begin
              let st = rid_state ctx request.rid in
              if st.client = None then st.client <- Some m.src;
              if st.rspan = 0 then st.rspan <- span;
              if j > st.seen then st.seen <- j;
              match st.last with
              | Some (j', d) when j' = j ->
                  (* retransmission of an already-terminated try *)
                  send_result ctx st ~rid:request.rid ~j d
              | Some (j', _) when j' > j -> ()
              | Some (_, d) when d.outcome = Dbms.Rm.Commit ->
                  (* a committed request is terminated forever: any later
                     try must replay its result, never re-execute. Later
                     tries of a committed request only reach a server
                     through migration — the client re-routed a try whose
                     commit-result message was lost, restarting it under a
                     fresh j at this destination — and the decision
                     transfer seeded [st.last] with the source commit. *)
                  send_result ctx st ~rid:request.rid ~j d
              | Some _ | None -> (
                  match cross_shards ctx ~body:request.body with
                  | Some shards -> compute_try_cross ctx st ~request ~j ~shards
                  | None -> compute_try ctx st ~request ~j)
            end
        | _ -> ()));
    loop ()
  in
  loop ()

(* ---------------- Fig. 6: the cleaning thread ---------------- *)

let parse_reg_a_rid key = Option.map snd (Reg_name.parse_reg_a key)

let known_rids ctx =
  let from_requests = Hashtbl.fold (fun rid _ acc -> rid :: acc) ctx.rids [] in
  let from_registers =
    List.filter_map parse_reg_a_rid (ctx.regs.reg_decided_keys ())
  in
  List.sort_uniq compare (from_requests @ from_registers)

(* Take over a cross-shard try whose coordinator is suspected: contest
   every participant's vote register with an abort vote (any undecided
   branch aborts the global transaction; a branch that already voted keeps
   its decided value), fold the same outcome any driver would, and finish
   delivering. [drive_cross] re-derives the plan from the [Gx_elect]'s body
   — the reason the election record carries it. *)
let clean_cross ctx st ~suspect ~rid ~j ~body =
  let cspan =
    match ctx.sink with
    | None -> 0
    | Some s ->
        let id = s.Rt.obs_span_open ~parent:st.rspan ~trace:rid "clean" in
        s.Rt.obs_span_attr id "j" (string_of_int j);
        s.Rt.obs_span_attr id "cross" "true";
        s.Rt.obs_span_attr id "suspect" (ctx.cfg.rt.name_of suspect);
        id
  in
  (match ctx.sink with
  | None -> ()
  | Some s -> s.Rt.obs_count "gx.takeover" 1);
  let cc = Option.get ctx.cfg.cross in
  let final =
    drive_cross ctx st ~rid ~j ~body ~parent:cspan ~vote_for:(fun ~k ~ops:_ ->
        if k = ctx.cfg.group then
          match
            ctx.regs.reg_write
              ~name:(Reg_name.gx_vote ~rid ~j ~k)
              ~j:0
              (Gx_vote_value { ok = false; values = [] })
          with
          | Gx_vote_value { ok; values } -> (ok, values)
          | _ -> (false, [])
        else
          gx_vote_rpc ctx cc ~rid ~j ~k ~make:(fun () ->
              Gx_resolve { rid; j; k }))
  in
  Rt.note
    (Printf.sprintf "cleaned:%d:%d:%s" rid j
       (match final.outcome with
       | Dbms.Rm.Commit -> "commit"
       | Dbms.Rm.Abort -> "abort"));
  (match ctx.sink with
  | None -> ()
  | Some s ->
      s.Rt.obs_count
        (match final.outcome with
        | Dbms.Rm.Abort -> "cleaner.aborts"
        | Dbms.Rm.Commit -> "cleaner.finishes")
        1;
      s.Rt.obs_span_close cspan);
  st.cleaned <- j :: st.cleaned

let clean_request ctx ~suspect ~rid =
  let st = rid_state ctx rid in
  let group = ctx.cfg.group in
  let rec scan j =
    match ctx.regs.reg_read ~name:(reg_a_name ~group rid) ~j with
    | None ->
        (* ⊥ normally means no further tries exist (they start in order)
           — but after a migration the group's regA array can have holes:
           a re-routed request's early tries terminated in the {e source}
           group's register namespace, so its first try here starts above
           1. Keep scanning up to the highest try this server has any
           evidence of — a moved-in terminated try ([st.last], from the
           decision transfer) or a client request seen here
           ([st.seen]). *)
        let floor =
          max st.seen (match st.last with Some (j', _) -> j' | None -> 0)
        in
        if j <= floor then scan (j + 1)
    | Some (Reg_a_value winner) ->
        if winner = suspect && not (List.mem j st.cleaned) then begin
          (* one "clean" span per taken-over try; [rspan] is known when this
             server saw the client's broadcast, else the span roots itself *)
          let cspan =
            match ctx.sink with
            | None -> 0
            | Some s ->
                let id =
                  s.Rt.obs_span_open ~parent:st.rspan ~trace:rid "clean"
                in
                s.Rt.obs_span_attr id "j" (string_of_int j);
                s.Rt.obs_span_attr id "suspect"
                  (ctx.cfg.rt.name_of suspect);
                id
          in
          let final =
            match
              ctx.regs.reg_write ~name:(reg_d_name ~group rid) ~j
                (Reg_d_value abort_decision)
            with
            | Reg_d_value d -> d
            | _ -> abort_decision
          in
          Rt.note
            (Printf.sprintf "cleaned:%d:%d:%s" rid j
               (match final.outcome with
               | Dbms.Rm.Commit -> "commit"
               | Dbms.Rm.Abort -> "abort"));
          (* abort-or-finish: the wo-register write either imposed the abort
             or lost to the crashed winner's already-decided outcome, which
             the cleaner then finishes delivering (paper Fig. 6) *)
          (match ctx.sink with
          | None -> ()
          | Some s ->
              s.Rt.obs_count
                (match final.outcome with
                | Dbms.Rm.Abort -> "cleaner.aborts"
                | Dbms.Rm.Commit -> "cleaner.finishes")
                1);
          terminate ctx st ~parent:cspan ~rid ~j final;
          (match ctx.sink with
          | None -> ()
          | Some s -> s.Rt.obs_span_close cspan);
          st.cleaned <- j :: st.cleaned
        end;
        scan (j + 1)
    | Some (Gx_elect { owner; body; _ }) ->
        if owner = suspect && not (List.mem j st.cleaned) then
          clean_cross ctx st ~suspect ~rid ~j ~body;
        scan (j + 1)
    | Some _ -> scan (j + 1)
  in
  scan 1

let clean_thread ctx () =
  let rec loop () =
    Rt.sleep ctx.cfg.clean_period;
    List.iter
      (fun ai ->
        if ai <> ctx.self && Fdetect.suspects ctx.fd ai then
          List.iter (fun rid -> clean_request ctx ~suspect:ai ~rid)
            (known_rids ctx))
      ctx.cfg.servers;
    loop ()
  in
  loop ()

(* ---------------- §5 extension: register garbage collection ----------- *)

(* Discard everything long-terminated requests left behind: protocol state
   for requests served here (by the termination timestamp) and register
   instances decided long ago (covers servers that only participated in the
   consensus). After this point a retransmission of the request is
   indistinguishable from a new one, so at-most-once only holds for clients
   that respect the grace period — the paper's timed caveat, demonstrated in
   the test suite. [gc_after] must comfortably exceed the fail-over
   (cleaning) latency so no live protocol activity references a collected
   register. *)
let gc_thread ctx ~after () =
  let rec loop () =
    Rt.sleep (Float.max 1. (after /. 2.));
    let now = Rt.now () in
    let expired =
      Hashtbl.fold
        (fun rid st acc ->
          match st.terminated_at with
          | Some t when now -. t > after -> rid :: acc
          | Some _ | None -> acc)
        ctx.rids []
    in
    List.iter (fun rid -> Hashtbl.remove ctx.rids rid) expired;
    let swept = ctx.regs.reg_collect ~older_than:(now -. after) in
    if expired <> [] || swept > 0 then
      Rt.note
        (Printf.sprintf "gc:rids=%d:swept=%d:instances=%d"
           (List.length expired) swept
           (ctx.regs.reg_instances ()));
    loop ()
  in
  loop ()

(* ---------------- Leases and batching (DESIGN.md §12) ---------------- *)

(* Volatile lease view of one server. [epoch]/[holder] cache what the lease
   register already decided; [pending] is only ever non-empty on the server
   that believes it holds the current epoch — followers deliberately queue
   nothing, so a stale queue can never re-commit a try that another epoch
   already decided (the client's retransmission re-drives any dropped
   request). [limbo] holds requests that arrived while no lease was known
   decided yet (bootstrap, or between a deposition and the next takeover):
   they are promoted into [pending] only if this server wins the next
   epoch — which seals every predecessor first — and are discarded the
   moment another holder is observed, so the follower-queue hazard cannot
   arise. *)
type lease = {
  mutable epoch : int;  (** highest lease epoch known decided; 0 = none *)
  mutable holder : Types.proc_id option;  (** winner of [epoch] *)
  mutable seq : int;  (** next batch slot in our epoch (holder only) *)
  mutable pending : (request * int) list;  (** queued (request, j) *)
  mutable limbo : (request * int) list;
      (** arrivals while [holder = None]; see above *)
  mutable tails : int;
      (** windows past their compute phase but not yet decided: the
          pipeline overlaps the next window's compute with the previous
          window's prepare/consensus, at most one such tail in flight *)
}

(* Terminate a whole batch: one Decide_batch per database carrying every
   (xid, outcome), then one Result_batch_msg per known client carrying its
   share of the decisions. [items] and [decisions] match positionally (the
   winning Reg_batch_elect order). Idempotent — re-delivery after a
   takeover re-sends results the clients deduplicate and re-decides
   transactions the databases already terminated.

   With [~async:true] (the failure-free hot path) the results go out as
   soon as the decision register is written — the register, not the
   databases, is the commit point (Fig. 4: the paper's server also replies
   right after deciding and leaves terminate() to be retried) — and the
   Decide round runs in a forked fiber off the window's critical path. A
   holder crash between the two is exactly the window the sealing
   abort-or-finish pass already closes. *)
let deliver_batch ctx ?(parent = 0) ?(async = false) ~trace ~items ~decisions
    () =
  let pairs = List.combine items decisions in
  let xitems =
    List.map
      (fun ((rid, j), (d : decision)) -> (Dbms.Xid.make ~rid ~j, d.outcome))
      pairs
  in
  let terminate () =
    span ctx "commit" (fun () ->
        ospan ctx ~parent ~trace "terminate" (fun () ->
            Dbms.Stub.decide_batch ~poll:ctx.cfg.poll ctx.ch ctx.rd
              ~dbs:ctx.cfg.dbs ~items:xitems))
  in
  if not async then terminate ();
  let by_client : (Types.proc_id, (int * int * decision) list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun ((rid, j), (d : decision)) ->
      let st = rid_state ctx rid in
      (match st.last with
      | Some (j', _) when j' >= j -> ()
      | Some _ | None -> st.last <- Some (j, d));
      st.terminated_at <- Some (Rt.now ());
      (match ctx.sink with
      | None -> ()
      | Some s ->
          s.Rt.obs_count "server.terminated" 1;
          if d.outcome = Dbms.Rm.Commit then s.Rt.obs_count "server.committed" 1);
      match st.client with
      | None -> () (* client unknown here (crashed before broadcasting) *)
      | Some c ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_client c) in
          Hashtbl.replace by_client c ((rid, j, d) :: cur))
    pairs;
  Hashtbl.iter
    (fun c items ->
      Rchannel.send ctx.ch c
        (Result_batch_msg { group = ctx.cfg.group; items = List.rev items }))
    by_client;
  if async then Rt.fork "batch-terminate" terminate

(* Close every batch slot of a predecessor epoch (Fig. 6 transposed to
   windows): walk the slots in order, writing Seal into the first unused one
   — the deposed holder's next elect loses against it, ending the epoch —
   and abort-or-finish every slot a batch did win, by contesting its
   decision register with abort-all. A slot whose decision was already
   written re-delivers the decided outcomes (idempotent). *)
let seal_epoch ctx ~epoch =
  let group = ctx.cfg.group in
  let rec scan seq =
    match
      ctx.regs.reg_write ~name:(Reg_name.batch_a ~group ~epoch ~seq) ~j:0
        Reg_batch_seal
    with
    | Reg_batch_seal -> () (* sealed: the epoch ends at this slot *)
    | Reg_batch_elect { items; _ } ->
        let decisions =
          match
            ctx.regs.reg_write ~name:(Reg_name.batch_d ~group ~epoch ~seq) ~j:0
              Reg_batch_abort_all
          with
          | Reg_batch_decide ds -> ds
          | Reg_batch_abort_all | _ -> List.map (fun _ -> abort_decision) items
        in
        List.iter2
          (fun (rid, j) (d : decision) ->
            Rt.note
              (Printf.sprintf "cleaned:%d:%d:%s" rid j
                 (match d.outcome with
                 | Dbms.Rm.Commit -> "commit"
                 | Dbms.Rm.Abort -> "abort"));
            match ctx.sink with
            | None -> ()
            | Some s ->
                s.Rt.obs_count
                  (match d.outcome with
                  | Dbms.Rm.Abort -> "cleaner.aborts"
                  | Dbms.Rm.Commit -> "cleaner.finishes")
                  1)
          items decisions;
        let trace = match items with (rid, _) :: _ -> rid | [] -> 0 in
        deliver_batch ctx ~trace ~items ~decisions ();
        scan (seq + 1)
    | _ -> scan (seq + 1)
  in
  scan 0

(* Contest the next lease epoch. Whoever wins must seal every predecessor
   epoch BEFORE serving: sealing sets [st.last] for every (rid, j) that
   entered a prior batch register, so the new window can never re-commit an
   already-decided try. *)
let lease_takeover ctx ls =
  let next = ls.epoch + 1 in
  let winner =
    match
      ctx.regs.reg_write
        ~name:(Reg_name.lease ~group:ctx.cfg.group)
        ~j:next (Reg_lease_value ctx.self)
    with
    | Reg_lease_value w -> w
    | _ -> ctx.self
  in
  ls.epoch <- next;
  ls.pending <- [];
  if winner <> ctx.self then begin
    ls.holder <- Some winner;
    ls.limbo <- []
  end
  else begin
    (* CRITICAL ordering: holdership of the new epoch must not become
       visible to the batch thread until the takeover is complete. Sealing
       suspends on consensus writes; if [ls.holder] already said "self",
       the batch thread would open window (next, 0) mid-takeover, bump
       [ls.seq] — and the [ls.seq <- 0] below would then rewind the
       counter onto an already-decided slot, whose stale election this
       server also "wins" (it owns the old register value), misdelivering
       the previous window's results under the new window's rids. *)
    ls.holder <- None;
    for e = next - 1 downto 1 do
      seal_epoch ctx ~epoch:e
    done;
    ls.seq <- 0;
    (* promote bootstrap arrivals now that every predecessor is sealed:
       window assembly re-filters against [st.last], so anything sealing
       already decided cannot re-enter a batch *)
    ls.pending <- ls.limbo;
    ls.limbo <- [];
    ls.holder <- Some ctx.self;
    Rt.note (Printf.sprintf "lease-acquired:g%d:e%d" ctx.cfg.group next);
    match ctx.sink with
    | None -> ()
    | Some s ->
        s.Rt.obs_count "server.lease_acquired" 1;
        s.Rt.obs_gauge "server.lease_epoch" (float_of_int next)
  end

(* The lease monitor replaces the cleaning thread on the batched path: it
   tracks the lease register, and contests the next epoch only when the
   failure detector suspects the current holder (or none exists yet — the
   first server bootstraps epoch 1 immediately). The register write stays
   the safety argument; suspicion only gates WHEN a takeover is tried. *)
let lease_monitor ctx ls () =
  let rec advance () =
    match
      ctx.regs.reg_read ~name:(Reg_name.lease ~group:ctx.cfg.group)
        ~j:(ls.epoch + 1)
    with
    | Some (Reg_lease_value w) ->
        ls.epoch <- ls.epoch + 1;
        ls.holder <- Some w;
        if w <> ctx.self then begin
          ls.pending <- [];
          ls.limbo <- []
        end;
        advance ()
    | Some _ | None -> ()
  in
  let head = match ctx.cfg.servers with a :: _ -> a | [] -> ctx.self in
  let rec loop first =
    if not first then Rt.sleep ctx.cfg.clean_period;
    advance ();
    (match ls.holder with
    | Some h when h = ctx.self -> ()
    | Some h when Fdetect.suspects ctx.fd h -> lease_takeover ctx ls
    | None when ctx.self = head || Fdetect.suspects ctx.fd head ->
        lease_takeover ctx ls
    | Some _ | None -> ());
    loop false
  in
  loop true

(* One batch through the amortized pipeline: a single batchA election, one
   XA start/end round, concurrently-executing business logic (the simulated
   SQL of the N transactions overlaps), one group-commit prepare, a single
   batchD decision write — still the commit point — and one batched
   terminate round. *)
let process_batch ctx ls items =
  let group = ctx.cfg.group in
  let epoch = ls.epoch and seq = ls.seq in
  let ids = List.map (fun ((r : request), j) -> (r.rid, j)) items in
  let n = List.length items in
  let trace = match ids with (rid, _) :: _ -> rid | [] -> 0 in
  let bspan =
    match ctx.sink with
    | None -> 0
    | Some s ->
        let id = s.Rt.obs_span_open ~trace "batch" in
        s.Rt.obs_span_attr id "size" (string_of_int n);
        s.Rt.obs_span_attr id "epoch" (string_of_int epoch);
        s.Rt.obs_span_attr id "seq" (string_of_int seq);
        id
  in
  let winner =
    span ctx "log-start" (fun () ->
        ospan ctx ~parent:bspan ~trace "election" (fun () ->
            ctx.regs.reg_write ~name:(Reg_name.batch_a ~group ~epoch ~seq) ~j:0
              (Reg_batch_elect { owner = ctx.self; items = ids })))
  in
  match winner with
  | Reg_batch_elect { owner; items = elected } when owner = ctx.self ->
      (* The slot is ours only if the register holds OUR proposal. An
         owner-only check is not enough: if the slot counter ever revisits
         a slot this server already decided (defense in depth — the
         takeover path orders its state updates to prevent it), the stale
         register value also names us as owner, and executing under it
         would pair these items with the old window's decisions. Skip past
         such a slot and requeue; the old window already delivered its own
         items, and assembly re-filters against [st.last]. *)
      if elected <> ids then begin
        ls.seq <- seq + 1;
        if ls.holder = Some ctx.self then
          ls.pending <- items @ ls.pending;
        match ctx.sink with
        | None -> ()
        | Some s ->
            s.Rt.obs_span_attr bspan "stale-slot" "true";
            s.Rt.obs_span_close bspan
      end
      else begin
      ls.seq <- seq + 1;
      let gen = cache_generation ctx in
      let xids = List.map (fun (rid, j) -> Dbms.Xid.make ~rid ~j) ids in
      let results = Array.make n None in
      ospan ctx ~parent:bspan ~trace "compute" (fun () ->
          span ctx "start" (fun () ->
              Dbms.Stub.xa_start_batch ~poll:ctx.cfg.poll ctx.ch ctx.rd
                ~dbs:ctx.cfg.dbs ~xids);
          List.iteri
            (fun i ((r : request), j) ->
              let xid = Dbms.Xid.make ~rid:r.rid ~j in
              Rt.fork "batch-exec" (fun () ->
                  let result =
                    span ctx "SQL" (fun () ->
                        run_business ctx ~xid ~attempt:j ~body:r.body)
                  in
                  Rt.note (Printf.sprintf "computed:%d:%d:%s" r.rid j result);
                  results.(i) <- Some result))
            items;
          while Array.exists Option.is_none results do
            Rt.sleep 1.
          done;
          span ctx "end" (fun () ->
              Dbms.Stub.xa_end_batch ~poll:ctx.cfg.poll ctx.ch ctx.rd
                ~dbs:ctx.cfg.dbs ~xids));
      let tail () =
        let votes =
          span ctx "prepare" (fun () ->
              ospan ctx ~parent:bspan ~trace "prepare" (fun () ->
                  Dbms.Stub.prepare_batch ~poll:ctx.cfg.poll ctx.ch ctx.rd
                    ~dbs:ctx.cfg.dbs ~xids))
        in
        let outcome_of xid =
          if
            List.for_all
              (fun (_, vs) ->
                match
                  List.find_opt (fun (x, _) -> Dbms.Xid.equal x xid) vs
                with
                | Some (_, Dbms.Rm.Yes) -> true
                | Some (_, Dbms.Rm.No) | None -> false)
              votes
          then Dbms.Rm.Commit
          else Dbms.Rm.Abort
        in
        let proposal =
          List.mapi
            (fun i xid ->
              {
                result = Some (Option.get results.(i));
                outcome = outcome_of xid;
              })
            xids
        in
        let decisions =
          span ctx "log-outcome" (fun () ->
              ospan ctx ~parent:bspan ~trace "consensus" (fun () ->
                  match
                    ctx.regs.reg_write
                      ~name:(Reg_name.batch_d ~group ~epoch ~seq)
                      ~j:0 (Reg_batch_decide proposal)
                  with
                  | Reg_batch_decide ds -> ds
                  | Reg_batch_abort_all ->
                      List.map (fun _ -> abort_decision) ids
                  | _ -> proposal))
        in
        deliver_batch ctx ~parent:bspan ~trace ~async:true ~items:ids
          ~decisions ();
        List.iter2
          (fun ((r : request), _) d ->
            cache_after_decide ctx ~body:r.body ~gen d)
          items decisions;
        match ctx.sink with
        | None -> ()
        | Some s ->
            s.Rt.obs_observe "server.batch_size" (float_of_int n);
            s.Rt.obs_span_close bspan
      in
      (* two-stage pipeline: prepare/consensus of this window runs in a
         forked fiber so the next window's compute can overlap it. The
         windows stay register-ordered (the batchA election above happened
         in the assembly fiber, before the fork); one tail in flight bounds
         the overlap so prepares cannot reorder across windows. *)
      while ls.tails > 0 do
        Rt.sleep 1.
      done;
      ls.tails <- ls.tails + 1;
      Rt.fork "batch-tail" (fun () ->
          Fun.protect
            ~finally:(fun () -> ls.tails <- ls.tails - 1)
            tail)
      end
  | _ ->
      (* lost the slot: a successor sealed our epoch — we are deposed. The
         dropped items re-drive through client retransmission to the new
         holder; nothing may be delivered from a lost election. *)
      ls.holder <- None;
      ls.pending <- [];
      (match ctx.sink with
      | None -> ()
      | Some s ->
          s.Rt.obs_span_attr bspan "deposed" "true";
          s.Rt.obs_span_close bspan)

(* Request intake on the batched path. Only the holder queues; followers
   answer what [st.last] already knows and otherwise DROP the request (the
   client's retransmission reaches the holder). Queueing on a follower
   would be unsound: its queue could go stale across an epoch change and
   feed an already-decided (rid, j) into a fresh window. The one exception
   is [limbo]: while NO holder is known, arrivals are parked there so the
   bootstrap head does not silently drop the first wave of requests and
   cost every client a full back-off period; limbo is promoted only
   through a won takeover (which seals predecessors first). *)
let batch_enqueue ctx ls (m : Types.message) =
  match m.payload with
  | Request_msg { request; j; group; _ } when group <> ctx.cfg.group ->
      (match ctx.sink with
      | None -> ()
      | Some s -> s.Rt.obs_count "server.misrouted" 1);
      Rt.note (Printf.sprintf "misrouted:g%d:got-g%d" ctx.cfg.group group);
      send_nack ctx ~rid:request.rid ~j ~client:m.src
  | Request_msg { request; j; _ } when rc_bounced ctx ~request ~j ~client:m.src
    ->
      ()
  | Request_msg { request; j; span; _ } ->
      if
        (not (serve_cached ctx ~request ~j ~client:m.src))
        && not (serve_replica ctx ~request ~j ~client:m.src)
      then begin
        let st = rid_state ctx request.rid in
        if st.client = None then st.client <- Some m.src;
        if st.rspan = 0 then st.rspan <- span;
        if j > st.seen then st.seen <- j;
        match st.last with
        | Some (j', d) when j' = j ->
            send_result ctx st ~rid:request.rid ~j d
        | Some (j', _) when j' > j -> ()
        | Some (_, d) when d.outcome = Dbms.Rm.Commit ->
            (* commit is final — replay for any later try (see the
               non-batched intake above for why this only arises across
               a migration) *)
            send_result ctx st ~rid:request.rid ~j d
        | Some _ | None -> (
            match cross_shards ctx ~body:request.body with
            | Some shards ->
                (* cross-shard requests bypass the batching windows: they
                   commit through their own Paxos-Commit instance, not a
                   batchD register. The running mark suppresses duplicate
                   drives while retransmissions keep arriving *)
                if not (Hashtbl.mem ctx.gx_running (request.rid, j, -1))
                then begin
                  Hashtbl.replace ctx.gx_running (request.rid, j, -1) ();
                  Rt.fork "gx-coord" (fun () ->
                      Fun.protect
                        ~finally:(fun () ->
                          Hashtbl.remove ctx.gx_running (request.rid, j, -1))
                        (fun () ->
                          compute_try_cross ctx st ~request ~j ~shards))
                end
            | None ->
                let queued q =
                  List.exists
                    (fun ((r : request), j') -> r.rid = request.rid && j' = j)
                    q
                in
                if ls.holder = Some ctx.self then begin
                  if not (queued ls.pending) then
                    ls.pending <- ls.pending @ [ (request, j) ]
                end
                else if ls.holder = None && not (queued ls.limbo) then
                  ls.limbo <- ls.limbo @ [ (request, j) ])
      end
  | _ -> ()

let rec take n = function
  | x :: rest when n > 0 ->
      let taken, dropped = take (n - 1) rest in
      (x :: taken, dropped)
  | rest -> ([], rest)

(* The batched analogue of [compute_thread]: block for one request, drain
   whatever else already arrived (timeout 0 empties the mailbox without
   waiting), linger briefly while the queue is still growing, then push up
   to [batch] queued requests through one pipeline cycle. *)
let batch_thread ctx ls () =
  (* group-commit linger: after a window delivers, its clients re-issue
     within a few ms of each other — without a short wait the next window
     would seed from the first arrival alone and run nearly empty. Keep
     stretching in [linger_step] slices only while the queue actually
     grew, so an idle or trickling workload pays at most one slice. *)
  let linger_step = 2. in
  let rec linger () =
    let before = List.length ls.pending in
    if before < ctx.cfg.batch then begin
      Rt.sleep linger_step;
      drain ();
      if List.length ls.pending > before then linger ()
    end
  and drain () =
    match Rt.recv_cls ~timeout:0. cls_request with
    | None -> ()
    | Some m ->
        batch_enqueue ctx ls m;
        drain ()
  in
  let rec loop () =
    (* block only when nothing is queued AND we hold the lease: while we do
       not (bootstrap, deposed), the lease monitor may promote [limbo] into
       [pending] from its own fiber, so poll instead of blocking forever on
       a mailbox the clients will only refill at their back-off period *)
    (if ls.holder = Some ctx.self && ls.pending <> [] then drain ()
     else
       let timeout =
         if ls.holder = Some ctx.self then None else Some ctx.cfg.poll
       in
       match Rt.recv_cls ?timeout cls_request with
       | None -> ()
       | Some m ->
           batch_enqueue ctx ls m;
           drain ());
    if ls.holder = Some ctx.self && ls.pending <> [] then linger ();
    if ls.holder = Some ctx.self && ls.pending <> [] then begin
      let batch, rest = take ctx.cfg.batch ls.pending in
      ls.pending <- rest;
      (* the registers decide; skip anything terminated meanwhile *)
      let batch =
        List.filter
          (fun ((r : request), j) ->
            match (rid_state ctx r.rid).last with
            | Some (j', _) when j' >= j -> false
            | Some _ | None -> true)
          batch
      in
      if batch <> [] then process_batch ctx ls batch
    end;
    loop ()
  in
  loop ()

(* ---------------- Fig. 4: main() ---------------- *)

let spawn cfg =
  let name =
    if cfg.group = 0 then Printf.sprintf "a%d" (cfg.index + 1)
    else Printf.sprintf "g%d:a%d" cfg.group (cfg.index + 1)
  in
  cfg.rt.spawn ~name ~main:(fun ~recovery () ->
      if recovery && cfg.persist = None then begin
        (* the paper's base protocol assumes crashed application servers
           stay down (a majority is always up); rejoining with amnesia
           would be unsound, so a recovered diskless server stays passive.
           Its cache still missed every invalidation while it was down and
           never will catch up: flush it so a runtime that reports this
           process as up doesn't feed frozen entries to Spec.view *)
        (match cfg.cache with
        | Some cache -> ignore (Method_cache.flush cache)
        | None -> ());
        Rt.note "appserver-recovery-unsupported"
      end
      else begin
        if recovery then Rt.note "appserver-recovered";
        let ch = Rchannel.create () in
        Rchannel.start ch;
        let fd =
          (* With reconfiguration on, the detector spans every
             provisioned group's servers, not just this group's:
             migration drivers collect seal/install acks from {e other}
             groups' servers and must be able to give up on crashed
             ones — an unmonitored process is never suspected, so a
             group-local detector would leave the driver waiting on a
             dead destination server forever. *)
          let fd_peers =
            match cfg.reconfig with
            | Some rcc ->
                List.init rcc.rc_groups rcc.rc_servers_of
                |> List.concat |> List.sort_uniq compare
            | None -> cfg.servers
          in
          match cfg.fd_spec with
          | Fd_oracle -> Fdetect.oracle cfg.rt
          | Fd_heartbeat { period; initial_timeout; timeout_bump } ->
              Fdetect.heartbeat ~period ~initial_timeout ~timeout_bump
                ~peers:fd_peers ()
        in
        Fdetect.start fd;
        let regs =
          match cfg.backend with
          | Reg_ct ->
              let agent =
                Consensus.Agent.create ?persist:cfg.persist ~peers:cfg.servers
                  ~fd ~ch ()
              in
              Consensus.Agent.start agent;
              let key ~name ~j = Printf.sprintf "%s[%d]" name j in
              {
                reg_write =
                  (fun ~name ~j v ->
                    Consensus.Agent.propose agent ~key:(key ~name ~j) v);
                reg_read =
                  (fun ~name ~j ->
                    Consensus.Agent.peek agent ~key:(key ~name ~j));
                reg_decided_keys =
                  (fun () -> Consensus.Agent.decided_keys agent);
                reg_collect =
                  (fun ~older_than -> Consensus.Agent.collect agent ~older_than);
                reg_instances =
                  (fun () -> Consensus.Agent.instance_count agent);
              }
          | Reg_synod ->
              let synod = Consensus.Synod.create ~peers:cfg.servers ~ch () in
              Consensus.Synod.start synod;
              let key ~name ~j = Printf.sprintf "%s[%d]" name j in
              {
                reg_write =
                  (fun ~name ~j v ->
                    Consensus.Synod.propose synod ~key:(key ~name ~j) v);
                reg_read =
                  (fun ~name ~j ->
                    Consensus.Synod.peek synod ~key:(key ~name ~j));
                reg_decided_keys =
                  (fun () -> Consensus.Synod.decided_keys synod);
                reg_collect = (fun ~older_than:_ -> 0);
                reg_instances = (fun () -> 0);
              }
        in
        let rd = Dbms.Stub.Readiness.create ~dbs:cfg.dbs in
        Dbms.Stub.Readiness.start rd;
        let rc =
          Option.map
            (fun (rcc : reconfig_cfg) ->
              {
                rc_map = rcc.init_map;
                sealing = None;
                driving = Hashtbl.create 4;
              })
            cfg.reconfig
        in
        let ctx =
          {
            cfg;
            self = Rt.self ();
            ch;
            fd;
            regs;
            rd;
            rids = Hashtbl.create 16;
            replica_memo = Hashtbl.create 16;
            gx_running = Hashtbl.create 16;
            rc;
            sink = Rt.obs ();
          }
        in
        (* reconfiguration fibers exist only on elastic deployments: a
           static server forks nothing new and its schedule stays
           byte-identical to the fixed-map protocol *)
        (match (rc, cfg.reconfig) with
        | Some rc, Some rcc ->
            rc_epoch_gauge ctx rc;
            Rt.fork "cfg" (cfg_thread ctx rc rcc);
            if cfg.group = rcc.cfg_group then
              Rt.fork "mig-monitor" (rc_monitor ctx rc rcc)
            else Rt.fork "cfg-refresh" (rc_refresh ctx rc rcc)
        | _ -> ());
        (* the gx fiber exists only on cross-enabled deployments: a default
           server forks nothing new and its schedule stays byte-identical
           to the pre-cross protocol *)
        (match cfg.cross with
        | Some _ -> Rt.fork "gx" (gx_thread ctx)
        | None -> ());
        (match cfg.cache with
        | Some cache ->
            (* a recovering server missed every invalidation broadcast
               while it was down; its surviving entries may predate
               commits, so start cold *)
            if recovery then ignore (Method_cache.flush cache);
            Rt.fork "cache-inval" (invalidate_thread ctx cache)
        | None -> ());
        if cfg.batch > 1 then begin
          (* leased, batched fast path: the lease monitor subsumes the
             cleaning thread (takeover seals the suspect's epoch, which
             aborts-or-finishes every outstanding batch) *)
          let ls =
            {
              epoch = 0;
              holder = None;
              seq = 0;
              pending = [];
              limbo = [];
              tails = 0;
            }
          in
          (* cross-shard tries bypass the lease windows, so their crashed
             coordinators need the classic cleaner: in batch mode no
             classic regA registers exist, which makes the scan see
             exactly the Gx_elect elections *)
          if cfg.cross <> None then Rt.fork "clean" (clean_thread ctx);
          Rt.fork "lease" (lease_monitor ctx ls);
          batch_thread ctx ls ()
        end
        else begin
          Rt.fork "clean" (clean_thread ctx);
          (match cfg.gc_after with
          | Some after -> Rt.fork "gc" (gc_thread ctx ~after)
          | None -> ());
          compute_thread ctx ()
        end
      end)
