(** One-call wiring of a complete three-tier deployment on a runtime
    backend: [n_dbs] database servers (each with its own resource manager
    and disk), [n_app_servers] application servers running the
    e-Transaction protocol, and one client executing a script.

    The deployment is backend-agnostic: pass the capability of a simulator
    engine ([Runtime_sim.of_engine]) for deterministic virtual-time
    runs, or of a live runtime ([Runtime_live.runtime]) for wall-clock
    execution on OS threads. *)

open Runtime

type t = {
  rt : Etx_runtime.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  app_servers : Types.proc_id list;  (** ordered; head = default primary *)
  client : Client.handle;
  caches : (Types.proc_id * Method_cache.t) list;
      (** one method cache per app server when built with [~cache:true];
          empty otherwise. Exposed so the spec can re-execute every live
          entry against committed state (cache coherence). *)
  business : Business.t;
}

val build :
  ?net:Etx_runtime.netmodel ->
  ?n_app_servers:int ->
  ?n_dbs:int ->
  ?fd_spec:Appserver.fd_spec ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?clean_period:float ->
  ?poll:float ->
  ?gc_after:float ->
  ?backend:Appserver.register_backend ->
  ?recoverable:bool ->
  ?register_disk_latency:float ->
  ?breakdown:Stats.Breakdown.t ->
  ?batch:int ->
  ?cache:bool ->
  rt:Etx_runtime.t ->
  business:Business.t ->
  script:(issue:(string -> Client.record) -> unit) ->
  unit ->
  t
(** Builds on [rt], which must be fresh (no processes spawned yet — the
    deployment relies on pids 0..n_dbs-1 being the databases). Defaults:
    three-tier network model (installed via [rt.set_net]), 3 application
    servers (tolerating one crash, as in the paper's measurements), 1
    database (the paper's configuration), oracle failure detector,
    paper-calibrated timing, 400 ms client back-off.

    [recoverable:true] equips each application server with stable register
    storage (forced write cost [register_disk_latency], default 12.5 ms),
    enabling crash-recovery of application servers — see
    {!Appserver.config} for semantics and cost.

    [batch] (default 1) selects the leased, batched commit pipeline on
    every application server — see {!Appserver.config}.

    [cache:true] equips every application server with a method cache for
    read-only business calls and switches the databases to
    commit-piggybacked invalidation broadcasts (DESIGN.md §13); the
    default [false] leaves runs record-for-record identical to earlier
    revisions. *)

val rm_settled : Dbms.Rm.t -> bool
(** No in-doubt transaction and every yes vote durably decided — the
    per-database half of quiescence, shared with the cluster builder. *)

val run_to_quiescence : ?deadline:float -> t -> bool
(** Run until the client script finishes and every database transaction is
    decided (no in-doubt leftovers); returns whether that state was reached
    before the deadline (default 600 s on the backend's clock). *)

val primary : t -> Types.proc_id
val rm_of : t -> Types.proc_id -> Dbms.Rm.t
