(** One-call wiring of a complete three-tier deployment in a fresh engine:
    [n_dbs] database servers (each with its own resource manager and disk),
    [n_app_servers] application servers running the e-Transaction protocol,
    and one client executing a script. *)

open Dsim

type t = {
  engine : Engine.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  app_servers : Types.proc_id list;  (** ordered; head = default primary *)
  client : Client.handle;
}

val build :
  ?seed:int ->
  ?net:Engine.netmodel ->
  ?n_app_servers:int ->
  ?n_dbs:int ->
  ?fd_spec:Appserver.fd_spec ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?clean_period:float ->
  ?poll:float ->
  ?gc_after:float ->
  ?backend:Appserver.register_backend ->
  ?recoverable:bool ->
  ?register_disk_latency:float ->
  ?breakdown:Stats.Breakdown.t ->
  ?tracing:bool ->
  business:Business.t ->
  script:(issue:(string -> Client.record) -> unit) ->
  unit ->
  t
(** Defaults: LAN network, 3 application servers (tolerating one crash, as
    in the paper's measurements), 1 database (the paper's configuration),
    oracle failure detector, paper-calibrated timing, 400 ms client
    back-off.

    [recoverable:true] equips each application server with stable register
    storage (forced write cost [register_disk_latency], default 12.5 ms),
    enabling crash-recovery of application servers — see
    {!Appserver.config} for semantics and cost. *)

val run_to_quiescence : ?deadline:float -> t -> bool
(** Run until the client script finishes and every database transaction is
    decided (no in-doubt leftovers); returns whether that state was reached
    before the deadline (default 600 s of virtual time). *)

val primary : t -> Types.proc_id
val rm_of : t -> Types.proc_id -> Dbms.Rm.t
