(** One-call wiring of a complete three-tier deployment on a runtime
    backend: [n_dbs] database servers (each with its own resource manager
    and disk), [n_app_servers] application servers running the
    e-Transaction protocol, and one client executing a script.

    The deployment is backend-agnostic: pass the capability of a simulator
    engine ([Runtime_sim.of_engine]) for deterministic virtual-time
    runs, or of a live runtime ([Runtime_live.runtime]) for wall-clock
    execution on OS threads. *)

open Runtime

type t = {
  rt : Etx_runtime.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  app_servers : Types.proc_id list;  (** ordered; head = default primary *)
  client : Client.handle;
  caches : (Types.proc_id * Method_cache.t) list;
      (** one method cache per app server when built with [~cache:true];
          empty otherwise. Exposed so the spec can re-execute every live
          entry against committed state (cache coherence). *)
  business : Business.t;
  replicas : (Types.proc_id * Dbms.Replica.t * Types.proc_id) list;
      (** (replica pid, handle, primary database pid) for every read
          replica when built with [~replicas:n > 0]; empty otherwise.
          Exposed so the spec can compare each replica's store against
          the primary's committed log prefix (replica consistency). *)
  replica_bound : int;
      (** the staleness bound replica reads were served under *)
}

val build :
  ?net:Etx_runtime.netmodel ->
  ?n_app_servers:int ->
  ?n_dbs:int ->
  ?fd_spec:Appserver.fd_spec ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?clean_period:float ->
  ?poll:float ->
  ?gc_after:float ->
  ?backend:Appserver.register_backend ->
  ?recoverable:bool ->
  ?register_disk_latency:float ->
  ?breakdown:Stats.Breakdown.t ->
  ?batch:int ->
  ?cache:bool ->
  ?group_commit:bool ->
  ?replicas:int ->
  ?replica_bound:int ->
  ?ship_period:float ->
  rt:Etx_runtime.t ->
  business:Business.t ->
  script:(issue:(string -> Client.record) -> unit) ->
  unit ->
  t
(** Builds on [rt], which must be fresh (no processes spawned yet — the
    deployment relies on pids 0..n_dbs-1 being the databases). Defaults:
    three-tier network model (installed via [rt.set_net]), 3 application
    servers (tolerating one crash, as in the paper's measurements), 1
    database (the paper's configuration), oracle failure detector,
    paper-calibrated timing, 400 ms client back-off.

    [recoverable:true] equips each application server with stable register
    storage (forced write cost [register_disk_latency], default 12.5 ms),
    enabling crash-recovery of application servers — see
    {!Appserver.config} for semantics and cost.

    [batch] (default 1) selects the leased, batched commit pipeline on
    every application server — see {!Appserver.config}.

    [cache:true] equips every application server with a method cache for
    read-only business calls and switches the databases to
    commit-piggybacked invalidation broadcasts (DESIGN.md §13); the
    default [false] leaves runs record-for-record identical to earlier
    revisions.

    [group_commit:true] switches every database's redo log to the
    group-commit scheduler (concurrent forced writes coalesce into one
    disk force per window — see {!Dstore.Log}); the default keeps the
    per-call force discipline, byte-identical to earlier revisions.

    [replicas] (default 0) spawns that many asynchronous change-log read
    replicas per database (DESIGN.md §14): each primary ships committed
    write-sets every [ship_period] ms (default 5) and every application
    server routes cache-miss read-only requests to a replica, falling
    back to the primary when the replica's provable staleness exceeds
    [replica_bound] (LSN delta, default 8). Replicas spawn after every
    other process, so [replicas:0] runs allocate identical pids and stay
    record-for-record identical to the pre-replica revision. *)

val rm_settled : Dbms.Rm.t -> bool
(** No in-doubt transaction and every yes vote durably decided — the
    per-database half of quiescence, shared with the cluster builder. *)

val replicas_settled : t -> bool
(** Every replica of an up primary has applied through the primary's
    committed watermark — the replica half of quiescence. *)

val run_to_quiescence : ?deadline:float -> t -> bool
(** Run until the client script finishes, every database transaction is
    decided (no in-doubt leftovers) and every replica of an up primary has
    caught up; returns whether that state was reached before the deadline
    (default 600 s on the backend's clock). *)

val primary : t -> Types.proc_id
val rm_of : t -> Types.proc_id -> Dbms.Rm.t
