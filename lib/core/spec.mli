(** Checkers for the e-Transaction specification (paper Section 3).

    Each check inspects a deployment after a run and returns human-readable
    violation descriptions (empty list = property holds). Termination
    properties are meaningful only after {!Deployment.run_to_quiescence}.

    The checks themselves are written against a {!View.t} — the slice of a
    run they inspect (databases, delivered records, completion flag, trace
    notes). A single-group {!Deployment.t} is one view ({!view}); a sharded
    cluster builds one view per replica group, filtering each client's
    records to the shard owning their routing key. *)

module View : sig
  type t = {
    label : string;  (** prefixed to every violation message (e.g. shard) *)
    dbs : (Runtime.Types.proc_id * Dbms.Rm.t) list;
    records : Client.record list;
        (** delivered records this view is accountable for *)
    scripts_done : bool;  (** all issuing clients ran to completion *)
    notes : unit -> (Runtime.Types.proc_id * string) list;
        (** trace notes (for the V.1 computed-result check) *)
    caches : (Runtime.Types.proc_id * Method_cache.t) list;
        (** per-app-server method caches this view is accountable for
            (empty when caching is off). View builders include only
            servers that are up at check time: a crashed server's frozen
            cache can serve nothing, and the recovery path flushes it. *)
    business : Business.t option;
        (** the deployment's business logic — {!cache_coherence}
            re-executes cached entries through it; [None] skips the
            check *)
    replicas :
      (Runtime.Types.proc_id * Dbms.Replica.t * Runtime.Types.proc_id) list;
        (** (replica pid, handle, primary database pid) triples this view
            is accountable for (empty when replicas are off) *)
    replica_bound : int;
        (** the deployment's staleness bound — every replica-served record
            must prove lag ≤ this *)
  }

  val agreement_a1 : t -> string list
  val agreement_a2 : t -> string list
  val agreement_a3 : t -> string list
  val validity_v1 : t -> string list
  val validity_v2 : t -> string list
  val termination_t1 : t -> string list
  val termination_t2 : t -> string list
  val exactly_once : t -> string list

  val cache_coherence : t -> string list
  (** Every entry still live in a method cache equals re-executing its
      method against the databases' current committed state (over a
      read-only window — a cached method that writes during re-execution
      is also flagged). Records served from the cache are exempt from
      A.1/exactly-once (no transaction of their own) but their results
      must still appear in some server's computed notes (V.1). *)

  val replica_consistency : t -> string list
  (** Replica consistency (DESIGN.md §14): (a) every replica's store
      equals the primary's committed state as of the replica's applied
      LSN (a committed log prefix — the asynchronous analogue of
      one-copy equivalence under bounded staleness); (b) every
      replica-served record proves lag ≤ the deployment's bound and its
      result equals re-executing the method against the primary's
      committed state as of the record's LSN. States a later checkpoint
      made unenumerable are skipped (unverifiable, not violations). *)

  val check_all : t -> string list
end

val view : ?label:string -> Deployment.t -> View.t
(** The whole deployment as one view (label defaults to empty = unprefixed
    messages). *)

val agreement_a1 : Deployment.t -> string list
(** A.1: no result delivered by the client unless committed by {e all}
    database servers. *)

val agreement_a2 : Deployment.t -> string list
(** A.2: no database server commits two different results of one request. *)

val agreement_a3 : Deployment.t -> string list
(** A.3: no two database servers decide differently on the same result. *)

val validity_v1 : Deployment.t -> string list
(** V.1: every delivered result was computed by an application server for a
    request the client issued (checked against the servers' computation
    trace notes). *)

val validity_v2 : Deployment.t -> string list
(** V.2: no database commits a result unless every database voted yes for
    it. *)

val termination_t1 : Deployment.t -> string list
(** T.1: the client (which did not crash) delivered a result for every
    issued request — i.e. its script ran to completion. *)

val termination_t2 : Deployment.t -> string list
(** T.2: every result a database voted for was eventually committed or
    aborted there (no in-doubt transaction remains). *)

val exactly_once : Deployment.t -> string list
(** End-to-end exactly-once: per client-delivered request, exactly one
    transaction committed at every database, and it matches the delivered
    try. Cache-served records are exempt (see {!View.cache_coherence}). *)

val cache_coherence : Deployment.t -> string list
(** See {!View.cache_coherence}. *)

val replica_consistency : Deployment.t -> string list

val check_all : Deployment.t -> string list
(** All of the above. *)
