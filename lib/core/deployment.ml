open Runtime
module Rt = Etx_runtime

type t = {
  rt : Rt.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  app_servers : Types.proc_id list;
  client : Client.handle;
  caches : (Types.proc_id * Method_cache.t) list;
  business : Business.t;
  replicas : (Types.proc_id * Dbms.Replica.t * Types.proc_id) list;
  replica_bound : int;
}

let build ?net ?(n_app_servers = 3) ?(n_dbs = 1)
    ?(fd_spec = Appserver.Fd_oracle) ?(timing = Dbms.Rm.paper_timing)
    ?(disk_force_latency = 12.5) ?(seed_data = []) ?(client_period = 400.)
    ?(clean_period = 20.) ?(poll = 10.) ?gc_after
    ?(backend = Appserver.Reg_ct) ?(recoverable = false)
    ?(register_disk_latency = 12.5) ?breakdown ?batch ?(cache = false)
    ?(group_commit = false) ?(replicas = 0) ?(replica_bound = 8)
    ?(ship_period = 5.) ~rt ~business ~script () =
  if replicas < 0 then invalid_arg "Deployment.build: replicas must be >= 0";
  let net =
    match net with
    | Some n -> n
    | None -> Dnet.Netmodel.three_tier ~n_dbs ()
  in
  (rt : Rt.t).set_net net;
  (* databases first: pids 0 .. n_dbs-1. With caching on they broadcast
     commit write keysets (Invalidate) to the app servers; off, they send
     byte-identical message streams to earlier revisions. Each database's
     replica pid cell is filled after the replicas spawn (last), so
     replica-less runs have zero spawn-order drift. *)
  let app_pids = ref [] in
  let db_cells = ref [] in
  let dbs =
    List.init n_dbs (fun i ->
        let name = Printf.sprintf "db%d" (i + 1) in
        let disk =
          Dstore.Disk.create ~force_latency:disk_force_latency ~label:"log" ()
        in
        let rm =
          Dbms.Rm.create ~timing ~seed_data ~group_commit ~disk ~name ()
        in
        let cell = ref [] in
        let ship =
          if replicas > 0 then Some (ship_period, fun () -> !cell) else None
        in
        let pid =
          Dbms.Server.spawn rt ~invalidate:cache ?ship ~name ~rm
            ~observers:(fun () -> !app_pids)
            ()
        in
        db_cells := !db_cells @ [ (pid, cell) ];
        (pid, rm))
  in
  let db_pids = List.map fst dbs in
  (* application servers: pids n_dbs .. n_dbs+n_app_servers-1 *)
  let servers = List.init n_app_servers (fun i -> n_dbs + i) in
  let caches = ref [] in
  let replica_map () =
    List.map (fun (db_pid, cell) -> (db_pid, !cell)) !db_cells
  in
  let spawned =
    List.init n_app_servers (fun index ->
        let persist =
          if recoverable then
            Some
              (Consensus.Agent.make_persistence
                 ~disk:
                   (Dstore.Disk.create ~force_latency:register_disk_latency
                      ~label:"reg-log" ()))
          else None
        in
        let mcache =
          if cache then Some (Method_cache.create ()) else None
        in
        let reps = if replicas > 0 then Some replica_map else None in
        let cfg =
          Appserver.config ~fd_spec ~clean_period ~poll ?gc_after ~backend
            ?persist ?breakdown ?batch ?cache:mcache ?replicas:reps
            ~replica_bound ~rt ~index ~servers ~dbs:db_pids ~business ()
        in
        let pid = Appserver.spawn cfg in
        (match mcache with
        | Some c -> caches := !caches @ [ (pid, c) ]
        | None -> ());
        pid)
  in
  assert (spawned = servers);
  app_pids := servers;
  let client = Client.spawn rt ~period:client_period ~servers ~script () in
  (* read replicas spawn LAST: a [replicas:0] deployment allocates exactly
     the pids it always did, so its runs stay record-for-record identical *)
  let replica_handles =
    List.concat_map
      (fun (db_pid, cell) ->
        let db_index =
          match List.find_index (fun p -> p = db_pid) db_pids with
          | Some i -> i
          | None -> assert false
        in
        List.init replicas (fun r ->
            let name = Printf.sprintf "db%d-r%d" (db_index + 1) (r + 1) in
            let replica = Dbms.Replica.create ~seed_data ~name () in
            let rpid =
              Dbms.Replica.spawn rt ~sql_cpu:timing.Dbms.Rm.sql_cpu ~name
                ~replica ()
            in
            cell := !cell @ [ rpid ];
            (rpid, replica, db_pid)))
      !db_cells
  in
  {
    rt;
    dbs;
    app_servers = servers;
    client;
    caches = !caches;
    business;
    replicas = replica_handles;
    replica_bound;
  }

(* A yes vote must reach a durable decision; a no vote aborted on the
   spot and holds nothing, so it never blocks quiescence. *)
let rm_settled rm =
  Dbms.Rm.in_doubt rm = []
  && List.for_all
       (fun (xid, vote) ->
         match (vote, Dbms.Rm.phase_of rm xid) with
         | Dbms.Rm.No, _ -> true
         | Dbms.Rm.Yes, (Some Dbms.Rm.Committed | Some Dbms.Rm.Aborted) -> true
         | Dbms.Rm.Yes, (Some Dbms.Rm.Active | Some Dbms.Rm.Prepared | None) ->
             false)
       (Dbms.Rm.votes_cast rm)

(* Replica quiescence: every replica of an up primary has applied through
   the primary's committed watermark (the shipper re-pushes every period,
   so a settled run converges). A crashed primary's replicas are exempt —
   they hold a consistent prefix and will catch up on its recovery. *)
let replicas_settled t =
  List.for_all
    (fun (_, replica, db_pid) ->
      (not (t.rt.is_up db_pid))
      ||
      let rm = List.assoc db_pid t.dbs in
      Dbms.Replica.applied_lsn replica = Dbms.Rm.last_commit_lsn rm)
    t.replicas

let run_to_quiescence ?(deadline = 600_000.) t =
  let settled () =
    Client.script_done t.client
    && List.for_all (fun (_, rm) -> rm_settled rm) t.dbs
    && replicas_settled t
  in
  t.rt.run_until ~deadline settled

let primary t = List.hd t.app_servers

let rm_of t pid = List.assoc pid t.dbs
