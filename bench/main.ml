(* Benchmark harness.

   Running this executable regenerates every table and figure of the paper's
   evaluation (Appendix 3) plus the ablations listed in DESIGN.md, then runs
   a Bechamel suite with one [Test.make] per experiment (wall-clock cost of
   regenerating each artefact) and micro-benchmarks of the simulation
   substrate.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- figure8      # one artefact
     dune exec bench/main.exe -- --domains 4 figure8
     dune exec bench/main.exe -- parallel     # 1-domain vs N-domain
     (artefacts: figure8 figure7 figure1 failover backoff loss dbs
      persistence consensus-failover throughput registers fd-quality
      scale scale-smoke shard shard-smoke cross cross-smoke migrate
      migrate-smoke batch batch-smoke cache cache-smoke group-commit
      group-commit-smoke recovery recovery-smoke replica replica-smoke
      parallel live micro failover-phases obs-overhead)

   Each invocation also writes BENCH_harness.json (via {!Stats.Json}) —
   per-artefact wall-clock seconds plus the sweep points, machine-readable:
     { "schema": "etx-bench-harness/10", "domains": N, "host_cores": C,
       "artefacts": [ { "name": "figure8", "backend": "sim", "obs": "off",
                        "wall_s": 1.234 }, ... ],
       "scale": [ { "servers": 3, "clients": 1, "events": 12345,
                    "wall_s": 0.5, "events_per_sec": 24690.0 }, ... ],
       "shard": [ { "backend": "sim", "shards": 2, "clients": 4,
                    "requests": 16, "delivered": 16, "events": 3606,
                    "vtime_ms": 1916.9, "tx_per_vs": 8.3, "wall_s": 0.2 },
                  { "backend": "live", "shards": 2, ...,
                    "requests_per_sec": 5.0 }, ... ],
       "cross": [ { "backend": "sim", "shards": 2, "cross_ratio": 0.5,
                    "cross": 6, "requests": 12, "delivered": 12,
                    "mean_participants": 1.5, "tx_per_vs": 4.1,
                    "msgs_per_commit": 61.0, "wall_s": 0.3 }, ... ],
       "migrate": [ { "backend": "sim", "clients": 6, "requests": 60,
                      "delivered": 60, "before_tx_per_vs": 9.1,
                      "during_tx_per_vs": 5.2, "after_tx_per_vs": 8.8,
                      "during_ms": 512.0, "drain_ms": 210.0,
                      "keys_moved": 3, "bounced": 7, "map_refresh": 4,
                      "wall_s": 0.4 }, ... ],
       "live": [ { "clients": 2, "requests": 6, "wall_s": 1.2,
                   "requests_per_sec": 5.0 }, ... ],
       "obs_overhead": [ { "mode": "disabled", "events": 12345,
                           "wall_s": 0.5, "events_per_sec": 24690.0 }, ... ],
       "group_commit": [ { "batch": 4, "group_commit": true, "forces": 129,
                           "forces_per_commit": 0.50, "tx_per_vs": 12.3,
                           "mean_latency_ms": 410.2 }, ... ],
       "recovery": [ { "commits": 256, "checkpointed": true, "log_len": 9,
                       "replay_steps": 9, "replay_ms": 0.021 }, ... ],
       "replica": [ { "replicas": 2, "reads": 56, "read_tx_per_vs": 3.1,
                      "replica_served": 18, "fallbacks": 2,
                      "hit_rate": 0.61, "mean_read_latency_ms": 220.4 },
                    ... ] }
   Every artefact records which runtime backend produced it ("sim" for the
   deterministic discrete-event engine, "live" for the wall-clock threads
   backend — the [live] and [shard] artefacts' live rows) and which
   observability mode it ran under ("off" = no registry attached,
   "metrics" = counters/histograms only, "traced" = spans too, "sweep" =
   the obs-overhead artefact compares all three). *)

let domains = ref 1

let section title body =
  Printf.printf "== %s ==\n%s\n\n%!" title body

let host_cores = Domain.recommended_domain_count ()

(* wall-clock ledger (name, backend, obs mode, seconds), dumped to
   BENCH_harness.json on exit *)
let timings : (string * string * string * float) list ref = ref []

(* (servers, clients, events, wall_s, events/s) points from the scale sweep *)
let scale_rows : (int * int * int * float * float) list ref = ref []

(* (clients, total requests, wall_s, requests/s) from the live artefact *)
let live_rows : (int * int * float * float) list ref = ref []

(* shard-sweep rows on the simulator, plus live cluster rows:
   (shards, clients, requests, delivered, wall_s, requests/s) *)
let shard_rows : Harness.Experiments.shard_row list ref = ref []

let shard_live_rows : (int * int * int * int * float * float) list ref = ref []

(* A16 rows: cross-shard commit cost vs cross fraction *)
let cross_rows : Harness.Experiments.cross_row list ref = ref []

(* A17 rows: online split under live traffic, throughput by phase *)
let migrate_rows : Harness.Experiments.migrate_row list ref = ref []

(* (mode, events, wall_s, events/s) rows from the obs-overhead artefact *)
let obs_rows : (string * int * float * float) list ref = ref []

(* A13 sim rows (batch cap vs throughput/messages), plus the live check:
   (batch, requests, delivered, wall_s, requests/s) *)
let batch_rows : Harness.Experiments.batch_row list ref = ref []

let batch_live_rows : (int * int * int * float * float) list ref = ref []

(* A14 rows (app servers × cache on/off, read-heavy mix) *)
let cache_rows : Harness.Experiments.read_row list ref = ref []

(* A15 rows: group-commit force amortization, checkpoint-bounded recovery
   replay, and read throughput served from change-log replicas *)
let gc_rows : Harness.Experiments.gc_row list ref = ref []

let recovery_rows : Harness.Experiments.recovery_row list ref = ref []

let replica_rows : Harness.Experiments.replica_row list ref = ref []

let timed ?(backend = "sim") ?(obs = "off") name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  timings := !timings @ [ (name, backend, obs, dt) ];
  r

let write_bench_json () =
  let open Stats.Json in
  let shard_json =
    List.map
      (fun (r : Harness.Experiments.shard_row) ->
        Obj
          [
            ("backend", String "sim");
            ("shards", Int r.shards);
            ("clients", Int r.clients);
            ("requests", Int r.requests);
            ("delivered", Int r.delivered);
            ("events", Int r.events);
            ("vtime_ms", Float r.vtime_ms);
            ("tx_per_vs", Float r.tx_per_vs);
            ("wall_s", Float r.wall_s);
          ])
      !shard_rows
    @ List.map
        (fun (shards, clients, requests, delivered, wall_s, rate) ->
          Obj
            [
              ("backend", String "live");
              ("shards", Int shards);
              ("clients", Int clients);
              ("requests", Int requests);
              ("delivered", Int delivered);
              ("wall_s", Float wall_s);
              ("requests_per_sec", Float rate);
            ])
        !shard_live_rows
  in
  let doc =
    Obj
      [
        ("schema", String "etx-bench-harness/10");
        ("domains", Int !domains);
        ("host_cores", Int host_cores);
        ( "artefacts",
          List
            (List.map
               (fun (name, backend, obs, wall_s) ->
                 Obj
                   [
                     ("name", String name);
                     ("backend", String backend);
                     ("obs", String obs);
                     ("wall_s", Float wall_s);
                   ])
               !timings) );
        ( "scale",
          List
            (List.map
               (fun (s, c, ev, wall, rate) ->
                 Obj
                   [
                     ("servers", Int s);
                     ("clients", Int c);
                     ("events", Int ev);
                     ("wall_s", Float wall);
                     ("events_per_sec", Float rate);
                   ])
               !scale_rows) );
        ("shard", List shard_json);
        ( "cross",
          List
            (List.map
               (fun (r : Harness.Experiments.cross_row) ->
                 Obj
                   [
                     ("backend", String "sim");
                     ("shards", Int r.cx_shards);
                     ("cross_ratio", Float r.cx_ratio);
                     ("cross", Int r.cx_cross);
                     ("requests", Int r.cx_requests);
                     ("delivered", Int r.cx_delivered);
                     ("mean_participants", Float r.cx_mean_participants);
                     ("events", Int r.cx_events);
                     ("vtime_ms", Float r.cx_vtime_ms);
                     ("tx_per_vs", Float r.cx_tx_per_vs);
                     ("msgs_per_commit", Float r.cx_msgs_per_commit);
                     ("wall_s", Float r.cx_wall_s);
                   ])
               !cross_rows) );
        ( "migrate",
          List
            (List.map
               (fun (r : Harness.Experiments.migrate_row) ->
                 Obj
                   [
                     ("backend", String "sim");
                     ("clients", Int r.mg_clients);
                     ("requests", Int r.mg_requests);
                     ("delivered", Int r.mg_delivered);
                     ("before_tx_per_vs", Float r.mg_before_tx_per_vs);
                     ("during_tx_per_vs", Float r.mg_during_tx_per_vs);
                     ("after_tx_per_vs", Float r.mg_after_tx_per_vs);
                     ("during_ms", Float r.mg_during_ms);
                     ("drain_ms", Float r.mg_drain_ms);
                     ("keys_moved", Int r.mg_keys_moved);
                     ("bounced", Int r.mg_bounced);
                     ("map_refresh", Int r.mg_map_refresh);
                     ("events", Int r.mg_events);
                     ("wall_s", Float r.mg_wall_s);
                   ])
               !migrate_rows) );
        ( "live",
          List
            (List.map
               (fun (clients, reqs, wall, rate) ->
                 Obj
                   [
                     ("clients", Int clients);
                     ("requests", Int reqs);
                     ("wall_s", Float wall);
                     ("requests_per_sec", Float rate);
                   ])
               !live_rows) );
        ( "obs_overhead",
          List
            (List.map
               (fun (mode, events, wall, rate) ->
                 Obj
                   [
                     ("mode", String mode);
                     ("events", Int events);
                     ("wall_s", Float wall);
                     ("events_per_sec", Float rate);
                   ])
               !obs_rows) );
        ( "batch",
          List
            (List.map
               (fun (r : Harness.Experiments.batch_row) ->
                 Obj
                   [
                     ("batch", Int r.batch);
                     ("tx_per_vs", Float r.tx_per_vs);
                     ("msgs_per_commit", Float r.msgs_per_commit);
                     ("mean_latency_ms", Float r.mean_latency_ms);
                     ("mean_fill", Float r.mean_fill);
                   ])
               !batch_rows) );
        ( "batch_live",
          List
            (List.map
               (fun (batch, requests, delivered, wall, rate) ->
                 Obj
                   [
                     ("batch", Int batch);
                     ("requests", Int requests);
                     ("delivered", Int delivered);
                     ("wall_s", Float wall);
                     ("requests_per_sec", Float rate);
                   ])
               !batch_live_rows) );
        ( "cache",
          List
            (List.map
               (fun (r : Harness.Experiments.read_row) ->
                 Obj
                   [
                     ("servers", Int r.servers);
                     ("cache", Bool r.cache);
                     ("reads", Int r.reads);
                     ("tx_per_vs", Float r.tx_per_vs);
                     ("read_tx_per_vs", Float r.read_tx_per_vs);
                     ("msgs_per_read", Float r.msgs_per_read);
                     ("hit_rate", Float r.hit_rate);
                     ("mean_read_latency_ms", Float r.mean_read_latency_ms);
                   ])
               !cache_rows) );
        ( "group_commit",
          List
            (List.map
               (fun (r : Harness.Experiments.gc_row) ->
                 Obj
                   [
                     ("batch", Int r.gc_batch);
                     ("group_commit", Bool r.gc_on);
                     ("forces", Int r.forces);
                     ("forces_per_commit", Float r.forces_per_commit);
                     ("tx_per_vs", Float r.gc_tx_per_vs);
                     ("mean_latency_ms", Float r.gc_mean_latency_ms);
                   ])
               !gc_rows) );
        ( "recovery",
          List
            (List.map
               (fun (r : Harness.Experiments.recovery_row) ->
                 Obj
                   [
                     ("commits", Int r.commits);
                     ("checkpointed", Bool r.checkpointed);
                     ("log_len", Int r.log_len);
                     ("replay_steps", Int r.steps);
                     ("replay_ms", Float r.replay_ms);
                   ])
               !recovery_rows) );
        ( "replica",
          List
            (List.map
               (fun (r : Harness.Experiments.replica_row) ->
                 Obj
                   [
                     ("replicas", Int r.rep_replicas);
                     ("reads", Int r.rep_reads);
                     ("read_tx_per_vs", Float r.rep_read_tx_per_vs);
                     ("replica_served", Int r.rep_served);
                     ("fallbacks", Int r.rep_fallbacks);
                     ("hit_rate", Float r.rep_hit_rate);
                     ( "mean_read_latency_ms",
                       Float r.rep_mean_read_latency_ms );
                   ])
               !replica_rows) );
      ]
  in
  let oc = open_out "BENCH_harness.json" in
  to_channel oc doc;
  close_out oc;
  Printf.printf
    "wrote BENCH_harness.json (%d artefacts, %d scale points, %d shard rows, \
     domains=%d, host_cores=%d)\n\
     %!"
    (List.length !timings)
    (List.length !scale_rows)
    (List.length shard_json)
    !domains host_cores

let run_figure8 () =
  timed "figure8" @@ fun () ->
  section "E1/E4 (paper Figure 8)"
    (Harness.Experiments.render_figure8
       (Harness.Experiments.figure8 ~domains:!domains ()))

let run_figure7 () =
  timed "figure7" @@ fun () ->
  section "E2 (paper Figure 7)"
    (Harness.Experiments.render_figure7
       (Harness.Experiments.figure7 ~domains:!domains ()))

let run_figure1 () =
  timed "figure1" @@ fun () ->
  section "E3 (paper Figure 1)"
    (Harness.Experiments.render_figure1
       (Harness.Experiments.figure1 ~domains:!domains ()))

let run_failover () =
  timed "failover" @@ fun () ->
  section "A1 (ablation)"
    (Harness.Experiments.render_failover
       (Harness.Experiments.failover_sweep ~domains:!domains ()))

let run_backoff () =
  timed "backoff" @@ fun () ->
  section "A2 (ablation)"
    (Harness.Experiments.render_backoff
       (Harness.Experiments.backoff_sweep ~domains:!domains ()))

let run_loss () =
  timed "loss" @@ fun () ->
  section "A3 (ablation)"
    (Harness.Experiments.render_loss
       (Harness.Experiments.loss_sweep ~domains:!domains ()))

let run_dbs () =
  timed "dbs" @@ fun () ->
  section "A4 (ablation)"
    (Harness.Experiments.render_dbs
       (Harness.Experiments.db_sweep ~domains:!domains ()))

let run_persistence () =
  timed "persistence" @@ fun () ->
  section "A5 (ablation)"
    (Harness.Experiments.render_persistence
       (Harness.Experiments.persistence_ablation ~domains:!domains ()))

let run_consensus_failover () =
  timed "consensus-failover" @@ fun () ->
  section "A6 (ablation)"
    (Harness.Experiments.render_consensus_failover
       (Harness.Experiments.consensus_failover_sweep ~domains:!domains ()))

let run_throughput () =
  timed "throughput" @@ fun () ->
  section "A7 (ablation)"
    (Harness.Experiments.render_throughput
       (Harness.Experiments.throughput_sweep ~domains:!domains ()))

let run_register_backends () =
  timed "registers" @@ fun () ->
  section "A8 (ablation)"
    (Harness.Experiments.render_register_backends
       (Harness.Experiments.register_backend_comparison ~domains:!domains ()))

let run_fd_quality () =
  timed "fd-quality" @@ fun () ->
  section "A9 (ablation)"
    (Harness.Experiments.render_fd_quality
       (Harness.Experiments.fd_quality_sweep ~domains:!domains ()))

let run_failover_phases () =
  timed ~obs:"traced" "failover-phases" @@ fun () ->
  section "A12 (ablation)"
    (Harness.Experiments.render_failover_phases
       (Harness.Experiments.failover_phases ~domains:!domains ()))

(* ------------------------------------------------------------------ *)
(* Obs-overhead artefact: the zero-cost claim, measured. One mid-size
   scale point run three ways — no registry attached (every instrument
   site is a single None-branch), metrics only (counters + histograms,
   spans disabled in the registry), fully traced — reporting simulated
   events per wall-clock second for each. With obs off the rate must sit
   within noise of the plain scale sweep's same point. *)

let run_obs_overhead () =
  let n_servers = 3 and n_clients = 8 and requests = 2 in
  timed ~obs:"sweep" "obs-overhead" @@ fun () ->
  let one mode =
    let reg =
      match mode with
      | "disabled" -> None
      | "metrics" -> Some (Obs.Registry.create ~spans:false ())
      | _ -> Some (Obs.Registry.create ())
    in
    let seed_data =
      Workload.Bank.seed_accounts
        (List.init n_clients (fun i -> (Printf.sprintf "acct%d" i, 1_000_000)))
    in
    let script_for i ~issue =
      for _ = 1 to requests do
        ignore (issue (Printf.sprintf "acct%d:1" i))
      done
    in
    let t0 = Unix.gettimeofday () in
    let e, d =
      Harness.Simrun.deployment ~seed:42 ~tracing:false ?obs:reg
        ~n_app_servers:n_servers ~seed_data ~business:Workload.Bank.update
        ~script:(script_for 0) ()
    in
    let extra =
      List.init (n_clients - 1) (fun i ->
          Etx.Client.spawn d.rt
            ~name:(Printf.sprintf "client%d" (i + 1))
            ~period:400. ~servers:d.app_servers
            ~script:(script_for (i + 1))
            ())
    in
    let clients = d.client :: extra in
    let all_done () = List.for_all Etx.Client.script_done clients in
    if not (Dsim.Engine.run_until ~deadline:7_200_000. e all_done) then
      failwith "obs-overhead: run did not finish";
    let wall = Unix.gettimeofday () -. t0 in
    (* self-check while we have a registry: the committed counter must
       equal the clients' delivered records exactly *)
    (match reg with
    | Some reg ->
        let delivered =
          List.fold_left
            (fun acc c -> acc + List.length (Etx.Client.records c))
            0 clients
        in
        let counted = Obs.Registry.counter_total reg "client.committed" in
        if counted <> delivered then
          failwith
            (Printf.sprintf
               "obs-overhead (%s): client.committed=%d but %d records \
                delivered"
               mode counted delivered)
    | None -> ());
    let events = Dsim.Engine.events_of e in
    (mode, events, wall, float_of_int events /. wall)
  in
  let rows = List.map one [ "disabled"; "metrics"; "traced" ] in
  obs_rows := !obs_rows @ rows;
  let base =
    match rows with (_, _, _, r) :: _ -> r | [] -> assert false
  in
  section "Obs overhead (events/sec, wall-clock, host-dependent)"
    (Stats.Table.render
       ~headers:[ "obs mode"; "sim events"; "wall (s)"; "events/s"; "vs off" ]
       ~rows:
         (List.map
            (fun (mode, ev, wall, rate) ->
              [
                mode;
                string_of_int ev;
                Printf.sprintf "%.3f" wall;
                Printf.sprintf "%.0f" rate;
                Printf.sprintf "%.2fx" (rate /. base);
              ])
            rows))

let run_scale ?points () =
  let rows =
    timed "scale" @@ fun () -> Harness.Experiments.scale_sweep ?points ()
  in
  scale_rows := !scale_rows @ rows;
  section "A10 (cluster-scale sweep)" (Harness.Experiments.render_scale rows)

(* the cheapest point only: keeps the sweep code exercised in CI without
   paying for the 25-server × 512-client run *)
let run_scale_smoke () =
  run_scale ~points:[ List.hd Harness.Experiments.scale_points ] ()

(* ------------------------------------------------------------------ *)
(* Shard artefact: S independent replica groups. Sim rows measure
   virtual-time throughput scaling (deterministic); the live row runs a
   2-shard cluster on the threads backend for wall-clock requests/sec. *)

(* first [per_shard] account keys owned by each shard of [map], scan order *)
let shard_keys map ~per_shard =
  let shards = Etx.Shard_map.shards map in
  let want = Array.make shards per_shard in
  let rec scan a acc remaining =
    if remaining = 0 then List.rev acc
    else
      let key = Printf.sprintf "acct%d" a in
      let s = Etx.Shard_map.shard_of map key in
      if want.(s) > 0 then begin
        want.(s) <- want.(s) - 1;
        scan (a + 1) (key :: acc) (remaining - 1)
      end
      else scan (a + 1) acc remaining
  in
  scan 0 [] (shards * per_shard)

let run_shard_sim ?points () =
  let rows =
    timed "shard" @@ fun () ->
    Harness.Experiments.shard_sweep ?points ~domains:!domains ()
  in
  shard_rows := !shard_rows @ rows;
  section "A11 (shard scaling)" (Harness.Experiments.render_shard rows)

let run_shard_live () =
  let shards = 2 and per_shard = 2 and n_requests = 3 in
  timed ~backend:"live" "shard-live" @@ fun () ->
  let map = Etx.Shard_map.create ~shards () in
  let keys = shard_keys map ~per_shard in
  let n_clients = List.length keys in
  let lt = Runtime_live.create ~seed:1 () in
  let rt = Runtime_live.runtime lt in
  let seed_data =
    Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
  in
  let scripts =
    List.map
      (fun key ~issue ->
        for _ = 1 to n_requests do
          ignore (issue (key ^ ":1"))
        done)
      keys
  in
  let c =
    Cluster.build ~map ~seed_data ~business:Workload.Bank.update ~rt ~scripts
      ()
  in
  let t0 = Unix.gettimeofday () in
  let ok = Cluster.run_to_quiescence ~deadline:120_000. c in
  let wall = Unix.gettimeofday () -. t0 in
  Runtime_live.shutdown lt;
  let total = n_clients * n_requests in
  let delivered = List.length (Cluster.all_records c) in
  let rate = float_of_int delivered /. wall in
  shard_live_rows :=
    !shard_live_rows @ [ (shards, n_clients, total, delivered, wall, rate) ];
  section "Shard scaling (live backend, wall clock)"
    (Printf.sprintf
       "%d shards x %d clients x %d requests on the threads backend: %d/%d \
        delivered in %.2f s wall = %.2f requests/sec (quiesced: %b)"
       shards n_clients n_requests delivered total wall rate ok)

let run_shard () =
  run_shard_sim ();
  run_shard_live ()

(* sim-only, shards 1-2: the CI smoke *)
let run_shard_smoke () = run_shard_sim ~points:[ 1; 2 ] ()

(* ------------------------------------------------------------------ *)
(* A16: cross-shard commit — throughput and msgs/commit vs the cross
   fraction of the workload, at 2 and 4 shards. Every row asserts the full
   cluster spec (global atomicity included), so the artefact doubles as a
   correctness sweep. *)

let run_cross_sim ?points ?requests () =
  let rows =
    timed "cross" @@ fun () ->
    Harness.Experiments.cross_sweep ?points ?requests ~domains:!domains ()
  in
  cross_rows := !cross_rows @ rows;
  section "A16 (cross-shard commit)" (Harness.Experiments.render_cross rows)

let run_cross () = run_cross_sim ()

(* 2 shards, ends of the ratio range, smaller workload: the CI smoke *)
let run_cross_smoke () =
  run_cross_sim ~points:[ (2, 0.0); (2, 1.0) ] ~requests:6 ()

(* ------------------------------------------------------------------ *)
(* A17: elastic reconfiguration — an online split of group 0's slots
   toward a pre-provisioned spare while clients keep issuing, reported as
   throughput before / during / after the migration window plus the copy
   and bounce counters. The spec assertion inside the sweep makes this
   artefact a correctness check as much as a measurement. *)

let run_migrate_sim ?issues () =
  let rows =
    timed "migrate" @@ fun () ->
    Harness.Experiments.migrate_sweep ?issues ~domains:!domains ()
  in
  migrate_rows := !migrate_rows @ rows;
  section "A17 (elastic reconfiguration)"
    (Harness.Experiments.render_migrate rows)

let run_migrate () = run_migrate_sim ()

(* fewer issues per client: the CI smoke *)
let run_migrate_smoke () = run_migrate_sim ~issues:4 ()

(* ------------------------------------------------------------------ *)
(* Live-backend artefact: wall-clock requests/sec on a small cluster.
   The only artefact that does not run on the simulator — sleeps, disk
   forces and network delays cost real milliseconds, so the figure of merit
   is end-to-end requests per wall-clock second, not events/sec. *)

let run_live () =
  let n_clients = 2 and n_requests = 3 in
  timed ~backend:"live" "live" @@ fun () ->
  let lt = Runtime_live.create ~seed:1 () in
  let rt = Runtime_live.runtime lt in
  let seed_data =
    Workload.Bank.seed_accounts
      (List.init n_clients (fun i -> (Printf.sprintf "acct%d" i, 1000)))
  in
  let script_for i ~issue =
    for _ = 1 to n_requests do
      ignore (issue (Printf.sprintf "acct%d:1" i))
    done
  in
  let d =
    Etx.Deployment.build ~rt ~seed_data ~business:Workload.Bank.update
      ~script:(script_for 0) ()
  in
  let extra =
    List.init (n_clients - 1) (fun i ->
        Etx.Client.spawn rt
          ~name:(Printf.sprintf "client%d" (i + 1))
          ~servers:d.app_servers
          ~script:(script_for (i + 1))
          ())
  in
  let clients = d.client :: extra in
  let t0 = Unix.gettimeofday () in
  (* wait for every client (run_to_quiescence only watches the deployment's
     own), then let the databases settle *)
  let all_done () = List.for_all Etx.Client.script_done clients in
  let ok =
    rt.run_until ~deadline:120_000. all_done
    && Etx.Deployment.run_to_quiescence ~deadline:30_000. d
  in
  let wall = Unix.gettimeofday () -. t0 in
  Runtime_live.shutdown lt;
  let total = n_clients * n_requests in
  let delivered =
    List.fold_left (fun acc c -> acc + List.length (Etx.Client.records c)) 0 clients
  in
  let rate = float_of_int delivered /. wall in
  live_rows := !live_rows @ [ (n_clients, total, wall, rate) ];
  section "Live backend (wall clock)"
    (Printf.sprintf
       "%d clients x %d requests on the threads backend: %d/%d delivered in \
        %.2f s wall = %.2f requests/sec (quiesced: %b)"
       n_clients n_requests delivered total wall rate ok)

(* ------------------------------------------------------------------ *)
(* Batch artefact: A13 throughput/message amortization against the batch
   cap on the simulator, the A13b phase table, and one live-backend row
   confirming the leased pipeline also runs on OS threads. *)

let run_batch_sim ?points ?clients ?requests () =
  let rows =
    timed "batch" @@ fun () ->
    Harness.Experiments.batch_sweep ?clients ?requests ?points
      ~domains:!domains ()
  in
  batch_rows := !batch_rows @ rows;
  section "A13 (batched commit pipeline)"
    (Harness.Experiments.render_batch rows);
  let phases =
    timed ~obs:"traced" "batch-phases" @@ fun () ->
    Harness.Experiments.batch_phases ?clients ?requests ~domains:!domains ()
  in
  section "A13b (amortized phase cost)"
    (Harness.Experiments.render_batch_phases phases)

let run_batch_live () =
  let n_clients = 4 and n_requests = 2 and batch = 4 in
  timed ~backend:"live" "batch-live" @@ fun () ->
  let lt = Runtime_live.create ~seed:1 () in
  let rt = Runtime_live.runtime lt in
  let seed_data =
    Workload.Bank.seed_accounts
      (List.init n_clients (fun i -> (Printf.sprintf "acct%d" i, 1000)))
  in
  let scripts =
    List.init n_clients (fun i ~issue ->
        for _ = 1 to n_requests do
          ignore (issue (Printf.sprintf "acct%d:1" i))
        done)
  in
  let c =
    Cluster.build ~batch ~seed_data ~business:Workload.Bank.update ~rt
      ~scripts ()
  in
  let t0 = Unix.gettimeofday () in
  let ok = Cluster.run_to_quiescence ~deadline:120_000. c in
  let wall = Unix.gettimeofday () -. t0 in
  Runtime_live.shutdown lt;
  let total = n_clients * n_requests in
  let delivered = List.length (Cluster.all_records c) in
  let rate = float_of_int delivered /. wall in
  batch_live_rows :=
    !batch_live_rows @ [ (batch, total, delivered, wall, rate) ];
  section "Batched pipeline (live backend, wall clock)"
    (Printf.sprintf
       "batch=%d, %d clients x %d requests on the threads backend: %d/%d \
        delivered in %.2f s wall = %.2f requests/sec (quiesced: %b)"
       batch n_clients n_requests delivered total wall rate ok)

let run_batch () =
  run_batch_sim ();
  run_batch_live ()

(* sim-only, caps 1/4, smaller workload: the CI smoke *)
let run_batch_smoke () = run_batch_sim ~points:[ 1; 4 ] ~clients:8 ~requests:2 ()

(* ------------------------------------------------------------------ *)
(* Cache artefact: A14 — the app-server method cache under a read-heavy
   mix, across server counts × cache on/off. The sweep asserts the full
   specification (including cache coherence) per row, so the artefact
   doubles as an end-to-end check of the invalidation protocol. *)

let run_cache ?points ?clients ?requests () =
  let rows =
    timed ~obs:"metrics" "cache" @@ fun () ->
    Harness.Experiments.read_sweep ?points ?clients ?requests
      ~domains:!domains ()
  in
  cache_rows := !cache_rows @ rows;
  section "A14 (method cache)" (Harness.Experiments.render_read rows)

(* server counts 1/2 and a smaller workload: the CI smoke. 8 requests per
   client = one full read/write cycle, so invalidation is exercised too *)
let run_cache_smoke () =
  run_cache ~points:[ 1; 2 ] ~clients:4 ~requests:8 ()

(* ------------------------------------------------------------------ *)
(* A15 artefacts: the log-structured storage tier. Three sweeps — the
   group-commit scheduler's force amortization, checkpoint-bounded
   recovery replay (a direct Rm micro-harness), and read throughput
   served from change-log replicas — each asserting its specification
   per row, so the artefacts double as end-to-end checks of the ship
   protocol and the staleness bound. *)

let run_group_commit ?points ?clients ?requests () =
  let rows =
    timed ~obs:"metrics" "group-commit" @@ fun () ->
    Harness.Experiments.group_commit_sweep ?points ?clients ?requests
      ~domains:!domains ()
  in
  gc_rows := !gc_rows @ rows;
  section "A15a (group commit)" (Harness.Experiments.render_gc rows)

(* caps 1/4, 16 clients: the CI smoke still shows the amortization *)
let run_group_commit_smoke () =
  run_group_commit ~points:[ 1; 4 ] ~clients:16 ~requests:2 ()

let run_recovery ?points () =
  let rows =
    timed "recovery" @@ fun () ->
    Harness.Experiments.recovery_sweep ?points ~domains:!domains ()
  in
  recovery_rows := !recovery_rows @ rows;
  section "A15b (checkpointed recovery)"
    (Harness.Experiments.render_recovery rows)

(* the two shortest histories only: the CI smoke *)
let run_recovery_smoke () = run_recovery ~points:[ 64; 256 ] ()

let run_replica ?points ?clients ?requests () =
  let rows =
    timed ~obs:"metrics" "replica" @@ fun () ->
    Harness.Experiments.replica_sweep ?points ?clients ?requests
      ~domains:!domains ()
  in
  replica_rows := !replica_rows @ rows;
  section "A15c (change-log read replicas)"
    (Harness.Experiments.render_replica rows)

(* replicas 0/1 and a smaller workload: the CI smoke *)
let run_replica_smoke () = run_replica ~points:[ 0; 1 ] ~clients:4 ~requests:8 ()

(* ------------------------------------------------------------------ *)
(* Parallel artefact: 1 domain vs N domains, byte-identity asserted *)

let run_parallel () =
  let n =
    if !domains > 1 then !domains
    else min 4 (max 2 (Dsim.Pool.default_domains ()))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let compare_artefact name render_seq render_par =
    let seq, t_seq = time render_seq in
    let par, t_par = time render_par in
    if not (String.equal seq par) then begin
      Printf.eprintf
        "parallel: %s output differs between 1 and %d domains!\n" name n;
      exit 1
    end;
    timings :=
      !timings
      @ [
          (name ^ "-1dom", "sim", "off", t_seq);
          (Printf.sprintf "%s-%ddom" name n, "sim", "off", t_par);
        ];
    (name, t_seq, t_par)
  in
  let rows =
    [
      compare_artefact "figure7"
        (fun () ->
          Harness.Experiments.render_figure7
            (Harness.Experiments.figure7 ~domains:1 ()))
        (fun () ->
          Harness.Experiments.render_figure7
            (Harness.Experiments.figure7 ~domains:n ()));
      compare_artefact "figure8"
        (fun () ->
          Harness.Experiments.render_figure8
            (Harness.Experiments.figure8 ~domains:1 ()))
        (fun () ->
          Harness.Experiments.render_figure8
            (Harness.Experiments.figure8 ~domains:n ()));
    ]
  in
  Printf.printf
    "== parallel harness: 1 domain vs %d domains (outputs byte-identical) ==\n"
    n;
  Printf.printf "  (%d cores recommended by this machine)\n"
    (Dsim.Pool.default_domains ());
  if host_cores <= 1 then
    Printf.printf
      "  note: single-core host — speedup not expected; domains time-slice \
       one core\n";
  List.iter
    (fun (name, t_seq, t_par) ->
      Printf.printf "  %-10s  1-dom %6.2fs   %d-dom %6.2fs   speedup %.2fx\n"
        name t_seq n t_par (t_seq /. t_par))
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite *)

open Bechamel

let micro_tests =
  let heap_bench () =
    let h = Runtime.Heap.create ~leq:(fun (a : int) b -> a <= b) () in
    for i = 0 to 999 do
      Runtime.Heap.push h ((i * 7919) mod 1000)
    done;
    let rec drain () = match Runtime.Heap.pop h with None -> () | Some _ -> drain () in
    drain ()
  in
  let rng_bench () =
    let r = Runtime.Rng.create ~seed:1 in
    let acc = ref 0L in
    for _ = 0 to 999 do
      acc := Int64.add !acc (Runtime.Rng.int64 r)
    done;
    !acc
  in
  let one_etx () =
    let _e, d =
      Harness.Simrun.deployment ~business:Etx.Business.trivial
        ~script:(fun ~issue -> ignore (issue "x"))
        ()
    in
    ignore (Etx.Deployment.run_to_quiescence d)
  in
  let one_consensus () =
    (* a full three-member wo-register write *)
    let value = Etx.Etx_types.Reg_a_value 0 in
    let t = Dsim.Engine.create () in
    let rt = Dsim.Runtime_sim.of_engine t in
    let peers = [ 0; 1; 2 ] in
    let decided = ref false in
    List.iter
      (fun i ->
        let pid =
          Dsim.Engine.spawn t ~name:(Printf.sprintf "m%d" i)
            ~main:(fun ~recovery:_ () ->
              let ch = Dnet.Rchannel.create () in
              Dnet.Rchannel.start ch;
              let fd = Dnet.Fdetect.oracle rt in
              let agent = Consensus.Agent.create ~peers ~fd ~ch () in
              Consensus.Agent.start agent;
              if i = 0 then begin
                ignore (Consensus.Agent.propose agent ~key:"k" value);
                decided := true
              end)
        in
        assert (pid = i))
      peers;
    ignore (Dsim.Engine.run_until ~deadline:10_000. t (fun () -> !decided))
  in
  Test.make_grouped ~name:"etx"
    [
      Test.make ~name:"heap-1k-push-pop" (Staged.stage heap_bench);
      Test.make ~name:"rng-1k" (Staged.stage rng_bench);
      Test.make ~name:"consensus-write" (Staged.stage one_consensus);
      Test.make ~name:"one-e-transaction" (Staged.stage one_etx);
      Test.make ~name:"figure1-suite"
        (Staged.stage (fun () -> ignore (Harness.Experiments.figure1 ())));
      Test.make ~name:"figure7-suite"
        (Staged.stage (fun () -> ignore (Harness.Experiments.figure7 ())));
      Test.make ~name:"figure8-table-5txn"
        (Staged.stage (fun () ->
             ignore (Harness.Experiments.figure8 ~transactions:5 ())));
    ]

let run_micro () =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] micro_tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "== Bechamel micro-benchmarks (wall-clock per run) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "  %-28s (no estimate)\n" name
      else if ns > 1e6 then Printf.printf "  %-28s %8.2f ms\n" name (ns /. 1e6)
      else Printf.printf "  %-28s %8.2f us\n" name (ns /. 1e3))
    (List.sort compare !rows);
  print_newline ()

let all () =
  run_figure8 ();
  run_figure7 ();
  run_figure1 ();
  run_failover ();
  run_backoff ();
  run_loss ();
  run_dbs ();
  run_persistence ();
  run_consensus_failover ();
  run_throughput ();
  run_register_backends ();
  run_fd_quality ();
  run_failover_phases ();
  run_obs_overhead ();
  run_scale ();
  run_shard ();
  run_cross ();
  run_migrate ();
  run_batch ();
  run_cache ();
  run_group_commit ();
  run_recovery ();
  run_replica ();
  run_live ();
  run_micro ()

let () =
  (* peel off --domains N before dispatching artefact names *)
  let rec parse acc = function
    | "--domains" :: n :: rest ->
        (match int_of_string_opt n with
        | Some d when d >= 1 -> domains := d
        | _ ->
            Printf.eprintf "--domains expects a positive integer, got %S\n" n;
            exit 2);
        parse acc rest
    | "--domains" :: [] ->
        Printf.eprintf "--domains expects an argument\n";
        exit 2
    | a :: rest -> parse (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  (match args with
  | [] -> all ()
  | args ->
      List.iter
        (function
          | "figure8" -> run_figure8 ()
          | "figure7" -> run_figure7 ()
          | "figure1" -> run_figure1 ()
          | "failover" -> run_failover ()
          | "backoff" -> run_backoff ()
          | "loss" -> run_loss ()
          | "dbs" -> run_dbs ()
          | "persistence" -> run_persistence ()
          | "consensus-failover" -> run_consensus_failover ()
          | "throughput" -> run_throughput ()
          | "registers" -> run_register_backends ()
          | "fd-quality" -> run_fd_quality ()
          | "failover-phases" -> run_failover_phases ()
          | "obs-overhead" -> run_obs_overhead ()
          | "scale" -> run_scale ()
          | "scale-smoke" -> run_scale_smoke ()
          | "shard" -> run_shard ()
          | "shard-smoke" -> run_shard_smoke ()
          | "cross" -> run_cross ()
          | "cross-smoke" -> run_cross_smoke ()
          | "migrate" -> run_migrate ()
          | "migrate-smoke" -> run_migrate_smoke ()
          | "batch" -> run_batch ()
          | "batch-smoke" -> run_batch_smoke ()
          | "cache" -> run_cache ()
          | "cache-smoke" -> run_cache_smoke ()
          | "group-commit" -> run_group_commit ()
          | "group-commit-smoke" -> run_group_commit_smoke ()
          | "recovery" -> run_recovery ()
          | "recovery-smoke" -> run_recovery_smoke ()
          | "replica" -> run_replica ()
          | "replica-smoke" -> run_replica_smoke ()
          | "parallel" -> run_parallel ()
          | "live" -> run_live ()
          | "micro" -> run_micro ()
          | other ->
              Printf.eprintf
                "unknown artefact %S (expected \
                 figure8|figure7|figure1|failover|backoff|loss|dbs|persistence|consensus-failover|throughput|registers|fd-quality|failover-phases|obs-overhead|scale|scale-smoke|shard|shard-smoke|cross|cross-smoke|migrate|migrate-smoke|batch|batch-smoke|cache|cache-smoke|group-commit|group-commit-smoke|recovery|recovery-smoke|replica|replica-smoke|parallel|live|micro)\n"
                other;
              exit 2)
        args);
  write_bench_json ()
