open Dbms

let first_db ctx = List.hd ctx.Etx.Business.dbs

(* A lock conflict that survived the stub's bounded retries: poison the
   transaction so this try ABORTS (and the client's retry runs afresh)
   rather than committing an empty workspace with a "busy" result. *)
let give_up_busy ctx ~db key =
  ignore (ctx.Etx.Business.exec ~db [ Rm.Fail ]);
  "busy:" ^ key

(* body "acct:delta" with delta like "+10" or "-3" *)
let parse_update body =
  match String.split_on_char ':' body with
  | [ account; delta ] -> (account, int_of_string delta)
  | _ -> invalid_arg ("Bank.update: bad request body " ^ body)

let update =
  {
    Etx.Business.label = "bank-update";
    run =
      (fun ctx ~body ->
        let account, delta = parse_update body in
        let db = first_db ctx in
        match
          ctx.Etx.Business.exec ~db [ Rm.Add (account, delta); Rm.Get account ]
        with
        | Rm.Exec_ok { values = [ Some (Value.Int v) ]; business_ok = true } ->
            Printf.sprintf "updated:%s:%d" account v
        | Rm.Exec_ok _ -> Printf.sprintf "updated:%s" account
        | Rm.Exec_conflict key -> give_up_busy ctx ~db key
        | Rm.Exec_rejected -> "error:rejected");
  }

let parse_transfer body =
  match String.split_on_char ':' body with
  | [ from_acct; to_acct; amount ] -> (from_acct, to_acct, int_of_string amount)
  | _ -> invalid_arg ("Bank.transfer: bad request body " ^ body)

let transfer =
  {
    Etx.Business.label = "bank-transfer";
    run =
      (fun ctx ~body ->
        let from_acct, to_acct, amount = parse_transfer body in
        let db = first_db ctx in
        let attempt_transfer () =
          match
            ctx.Etx.Business.exec ~db
              [
                Rm.Ensure_min (from_acct, amount);
                Rm.Add (from_acct, -amount);
                Rm.Add (to_acct, amount);
              ]
          with
          | Rm.Exec_ok { business_ok = true; _ } ->
              Printf.sprintf "transferred:%d:%s->%s" amount from_acct to_acct
          | Rm.Exec_ok { business_ok = false; _ } ->
              (* user-level abort: this try's transaction is poisoned and
                 will abort; the client will retry with attempt > 1 *)
              "insufficient-funds"
          | Rm.Exec_conflict key -> give_up_busy ctx ~db key
          | Rm.Exec_rejected -> "error:rejected"
        in
        if ctx.Etx.Business.attempt = 1 then attempt_transfer ()
        else
          (* A previous try aborted. Re-check the balance: transfer again if
             it suffices (the abort came from a crash or race), otherwise
             compute a committable failure report (paper footnote 4). *)
          match ctx.Etx.Business.exec ~db [ Rm.Get from_acct ] with
          | Rm.Exec_ok { values = [ Some (Value.Int bal) ]; _ }
            when bal >= amount ->
              attempt_transfer ()
          | Rm.Exec_ok { values = [ v ]; _ } ->
              Printf.sprintf "failed:insufficient-funds:%s=%s" from_acct
                (match v with
                | Some value -> Value.to_string value
                | None -> "0")
          | Rm.Exec_ok _ | Rm.Exec_conflict _ | Rm.Exec_rejected ->
              "failed:insufficient-funds")
  }

let audit =
  {
    Etx.Business.label = "bank-audit";
    run =
      (fun ctx ~body ->
        let db = first_db ctx in
        match ctx.Etx.Business.exec ~db [ Rm.Get body ] with
        | Rm.Exec_ok { values = [ Some v ]; _ } ->
            Printf.sprintf "balance:%s:%s" body (Value.to_string v)
        | Rm.Exec_ok _ -> Printf.sprintf "balance:%s:none" body
        | Rm.Exec_conflict key -> give_up_busy ctx ~db key
        | Rm.Exec_rejected -> "error:rejected");
  }

let seed_accounts accounts =
  List.map (fun (name, balance) -> (name, Value.Int balance)) accounts
