(** Deterministic request-body generators for stress runs and benchmarks. *)

type kind =
  | Bank_updates of { accounts : int; max_delta : int }
  | Bank_transfers of { accounts : int; max_amount : int }
  | Travel_bookings of { destinations : string list; max_party : int }

val bodies : seed:int -> n:int -> kind -> string list
(** [n] request bodies, reproducible for a given seed. *)

val business_of : kind -> Etx.Business.t

val seed_data_of : kind -> (string * Dbms.Value.t) list
(** Matching initial database contents (generous balances/inventory). *)
