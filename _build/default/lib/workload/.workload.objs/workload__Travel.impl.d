lib/workload/travel.ml: Dbms Etx List Printf Rm String Value
