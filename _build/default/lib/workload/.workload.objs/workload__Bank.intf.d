lib/workload/bank.mli: Dbms Etx
