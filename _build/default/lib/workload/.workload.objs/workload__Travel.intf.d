lib/workload/travel.mli: Dbms Etx
