lib/workload/generator.mli: Dbms Etx
