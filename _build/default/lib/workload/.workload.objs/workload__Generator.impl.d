lib/workload/generator.ml: Bank Dsim List Printf Travel
