lib/workload/bank.ml: Dbms Etx List Printf Rm String Value
