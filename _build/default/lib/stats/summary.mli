(** Summary statistics for latency samples.

    The paper reports mean response times over repeated identical
    transactions together with a 90% confidence interval (and checks its
    width stays under 10% of the mean); {!ci90} reproduces that
    methodology. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  ci90_low : float;
  ci90_high : float;
}

val of_samples : float list -> t
(** Raises [Invalid_argument] on an empty list. *)

val ci90_width_ratio : t -> float
(** Width of the 90% CI divided by the mean — the paper's < 10% check. *)

val mean : float list -> float
val stddev : float list -> float
val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]] (nearest-rank on the sorted
    samples). *)

val pp : Format.formatter -> t -> unit
