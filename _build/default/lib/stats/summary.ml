type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  ci90_low : float;
  ci90_high : float;
}

let mean = function
  | [] -> invalid_arg "Summary.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (ss /. (n -. 1.))

let percentile xs p =
  match List.sort compare xs with
  | [] -> invalid_arg "Summary.percentile: empty"
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
      in
      let rank = max 0 (min (n - 1) rank) in
      List.nth sorted rank

(* two-sided 90% confidence interval for the mean, normal approximation *)
let z90 = 1.6449

let of_samples xs =
  match xs with
  | [] -> invalid_arg "Summary.of_samples: empty"
  | _ ->
      let n = List.length xs in
      let m = mean xs in
      let s = stddev xs in
      let half = z90 *. s /. sqrt (float_of_int n) in
      {
        n;
        mean = m;
        stddev = s;
        min = List.fold_left Float.min infinity xs;
        max = List.fold_left Float.max neg_infinity xs;
        p50 = percentile xs 50.;
        p95 = percentile xs 95.;
        p99 = percentile xs 99.;
        ci90_low = m -. half;
        ci90_high = m +. half;
      }

let ci90_width_ratio t =
  if t.mean = 0. then 0. else (t.ci90_high -. t.ci90_low) /. t.mean

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f \
     ci90=[%.1f,%.1f]"
    t.n t.mean t.stddev t.min t.p50 t.p95 t.p99 t.max t.ci90_low t.ci90_high
