(** Plain-text table rendering for experiment output. *)

val render : headers:string list -> rows:string list list -> string
(** Column-aligned table with a header separator; first column is
    left-aligned, the rest right-aligned. *)

val fmt_ms : float -> string
(** Milliseconds with one decimal, e.g. ["217.4"]. *)

val fmt_pct : float -> string
(** Signed percentage, e.g. ["+16%"]. *)
