let fmt_ms v = Printf.sprintf "%.1f" v

let fmt_pct v = Printf.sprintf "%+.0f%%" v

let render ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all)
  in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           if i = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         r)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  match all with
  | header :: body ->
      String.concat "\n" (render_row header :: sep :: List.map render_row body)
  | [] -> ""
