lib/stats/table.mli:
