lib/stats/breakdown.mli:
