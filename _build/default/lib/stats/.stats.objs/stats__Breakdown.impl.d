lib/stats/breakdown.ml: Dsim Hashtbl List Option String
