(** Latency-component accounting for the paper's Figure 8.

    An application server wraps each protocol stage in {!span}; the harness
    marks transaction boundaries with {!tick}; {!row} then reports the mean
    per-transaction time spent in each category, and [other] is whatever part
    of the client-visible total no category accounts for (dominated by
    client–server communication, as in the paper). *)

type t

val create : unit -> t

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t category f] runs [f], charging its elapsed virtual time to
    [category]. Must run inside a fiber. Nesting is allowed but the caller
    is responsible for categories not double-counting. *)

val add : t -> string -> float -> unit
(** Directly charge [category]. *)

val tick : t -> unit
(** Mark the completion of one transaction. *)

val transactions : t -> int

val row : t -> string -> float
(** Mean per-transaction time of a category (0 if never charged). *)

val categories : t -> string list
(** Categories charged so far, sorted. *)

val other : t -> total:float -> float
(** [other t ~total] is the unaccounted share of the mean client-visible
    total. *)

val reset : t -> unit
