(** Checkers for the e-Transaction specification (paper Section 3).

    Each check inspects a deployment after a run and returns human-readable
    violation descriptions (empty list = property holds). Termination
    properties are meaningful only after {!Deployment.run_to_quiescence}. *)

val agreement_a1 : Deployment.t -> string list
(** A.1: no result delivered by the client unless committed by {e all}
    database servers. *)

val agreement_a2 : Deployment.t -> string list
(** A.2: no database server commits two different results of one request. *)

val agreement_a3 : Deployment.t -> string list
(** A.3: no two database servers decide differently on the same result. *)

val validity_v1 : Deployment.t -> string list
(** V.1: every delivered result was computed by an application server for a
    request the client issued (checked against the servers' computation
    trace notes). *)

val validity_v2 : Deployment.t -> string list
(** V.2: no database commits a result unless every database voted yes for
    it. *)

val termination_t1 : Deployment.t -> string list
(** T.1: the client (which did not crash) delivered a result for every
    issued request — i.e. its script ran to completion. *)

val termination_t2 : Deployment.t -> string list
(** T.2: every result a database voted for was eventually committed or
    aborted there (no in-doubt transaction remains). *)

val exactly_once : Deployment.t -> string list
(** End-to-end exactly-once: per client-delivered request, exactly one
    transaction committed at every database, and it matches the delivered
    try. *)

val check_all : Deployment.t -> string list
(** All of the above. *)
