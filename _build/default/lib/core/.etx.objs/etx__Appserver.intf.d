lib/core/appserver.mli: Business Consensus Dsim Engine Stats Types
