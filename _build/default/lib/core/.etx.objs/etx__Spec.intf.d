lib/core/spec.mli: Deployment
