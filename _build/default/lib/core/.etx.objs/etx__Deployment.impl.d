lib/core/deployment.ml: Appserver Client Consensus Dbms Dnet Dsim Dstore Engine List Printf Types
