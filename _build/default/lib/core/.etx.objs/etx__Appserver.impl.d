lib/core/appserver.ml: Business Consensus Dbms Dnet Dsim Engine Etx_types Fdetect Float Hashtbl List Printf Rchannel Scanf Stats Types
