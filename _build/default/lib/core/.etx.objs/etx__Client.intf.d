lib/core/client.mli: Dsim Engine Etx_types Types
