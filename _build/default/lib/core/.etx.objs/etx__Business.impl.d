lib/core/business.ml: Dbms Dsim Etx_types Printf Types
