lib/core/deployment.mli: Appserver Business Client Dbms Dsim Engine Stats Types
