lib/core/client.ml: Dbms Dnet Dsim Engine Etx_types Rchannel Types
