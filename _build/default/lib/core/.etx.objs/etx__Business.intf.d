lib/core/business.mli: Dbms Dsim Etx_types Types
