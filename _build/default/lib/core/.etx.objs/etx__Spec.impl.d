lib/core/spec.ml: Client Dbms Deployment Dsim Hashtbl List Option Printf String
