lib/core/etx_types.ml: Dbms Dsim Format
