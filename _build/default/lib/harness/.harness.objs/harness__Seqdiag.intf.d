lib/harness/seqdiag.mli: Dsim Engine Trace Types
