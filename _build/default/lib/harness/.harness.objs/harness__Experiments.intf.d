lib/harness/experiments.mli:
