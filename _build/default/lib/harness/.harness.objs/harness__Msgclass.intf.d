lib/harness/msgclass.mli: Dsim Trace Types
