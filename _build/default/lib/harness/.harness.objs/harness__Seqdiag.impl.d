lib/harness/seqdiag.ml: Buffer Consensus Dbms Dnet Dsim Engine Etx List Printf String Trace Types
