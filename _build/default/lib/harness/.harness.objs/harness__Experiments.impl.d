lib/harness/experiments.ml: Baselines Consensus Dnet Dsim Dstore Etx List Msgclass Option Printf Stats String Workload
