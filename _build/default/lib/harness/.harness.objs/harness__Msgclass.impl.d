lib/harness/msgclass.ml: Consensus Dnet Dsim Trace Types
