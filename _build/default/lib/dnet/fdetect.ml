open Dsim

type Types.payload += Fd_heartbeat

type peer_state = {
  mutable last_heard : float;
  mutable timeout : float;
  mutable suspected : bool;
}

type hb = {
  period : float;
  bump : float;
  peers : (Types.proc_id * peer_state) list;
}

type t = Heartbeat of hb | Oracle of Engine.t | Scripted of (Types.proc_id -> bool)

let heartbeat ?(period = 10.) ?(initial_timeout = 50.) ?(timeout_bump = 25.)
    ~peers () =
  let now = Engine.now () in
  let states =
    List.map
      (fun pid ->
        (pid, { last_heard = now; timeout = initial_timeout; suspected = false }))
      peers
  in
  Heartbeat { period; bump = timeout_bump; peers = states }

let oracle engine = Oracle engine

let of_fun f = Scripted f

let broadcaster hb () =
  let self = Engine.self () in
  let rec loop () =
    List.iter
      (fun (pid, _) -> if pid <> self then Engine.send pid Fd_heartbeat)
      hb.peers;
    Engine.sleep hb.period;
    loop ()
  in
  loop ()

let listener hb () =
  let is_hb m = match m.Types.payload with Fd_heartbeat -> true | _ -> false in
  let rec loop () =
    match Engine.recv ~filter:is_hb () with
    | None -> ()
    | Some m ->
        (match List.assoc_opt m.src hb.peers with
        | None -> ()
        | Some st ->
            st.last_heard <- Engine.now ();
            if st.suspected then begin
              (* false suspicion: the ◇P adaptation rule *)
              st.suspected <- false;
              st.timeout <- st.timeout +. hb.bump
            end);
        loop ()
  in
  loop ()

let monitor hb () =
  let self = Engine.self () in
  let rec loop () =
    Engine.sleep (hb.period /. 2.);
    let now = Engine.now () in
    List.iter
      (fun (pid, st) ->
        if pid <> self && (not st.suspected) && now -. st.last_heard > st.timeout
        then st.suspected <- true)
      hb.peers;
    loop ()
  in
  loop ()

let start = function
  | Oracle _ | Scripted _ -> ()
  | Heartbeat hb ->
      Engine.fork "fd-broadcast" (broadcaster hb);
      Engine.fork "fd-listen" (listener hb);
      Engine.fork "fd-monitor" (monitor hb)

let suspects t pid =
  match t with
  | Oracle engine -> not (Engine.is_up engine pid)
  | Scripted f -> f pid
  | Heartbeat hb -> (
      match List.assoc_opt pid hb.peers with
      | None -> false
      | Some st -> st.suspected)

let is_heartbeat = function Fd_heartbeat -> true | _ -> false

let current_timeout t pid =
  match t with
  | Oracle _ | Scripted _ -> None
  | Heartbeat hb -> (
      match List.assoc_opt pid hb.peers with
      | None -> None
      | Some st -> Some st.timeout)
