lib/dnet/netmodel.ml: Dsim Engine List Rng Types
