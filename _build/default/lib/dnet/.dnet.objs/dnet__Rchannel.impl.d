lib/dnet/rchannel.ml: Dsim Engine Float Hashtbl List Types
