lib/dnet/fdetect.ml: Dsim Engine List Types
