lib/dnet/fdetect.mli: Dsim Engine Types
