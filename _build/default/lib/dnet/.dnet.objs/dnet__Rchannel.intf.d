lib/dnet/rchannel.mli: Dsim Types
