lib/dnet/netmodel.mli: Dsim Engine Types
