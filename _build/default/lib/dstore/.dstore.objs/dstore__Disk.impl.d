lib/dstore/disk.ml: Dsim Option
