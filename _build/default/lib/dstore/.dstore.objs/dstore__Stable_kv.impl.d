lib/dstore/stable_kv.ml: Disk Hashtbl
