lib/dstore/wal.ml: Disk List
