lib/dstore/disk.mli:
