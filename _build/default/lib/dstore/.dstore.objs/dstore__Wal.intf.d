lib/dstore/wal.mli: Disk
