lib/dstore/stable_kv.mli: Disk
