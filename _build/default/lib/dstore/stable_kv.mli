(** Stable key-value map: survives crashes, forced write per update.

    Used where a component needs durable named state without log replay
    (e.g. a 2PC coordinator's presumed-nothing protocol table). *)

type ('k, 'v) t

val create : disk:Disk.t -> unit -> ('k, 'v) t

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Durable update (one forced disk write). *)

val get : ('k, 'v) t -> 'k -> 'v option

val remove : ('k, 'v) t -> 'k -> unit
(** Durable removal (one forced disk write). *)

val bindings : ('k, 'v) t -> ('k * 'v) list
