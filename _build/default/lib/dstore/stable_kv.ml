type ('k, 'v) t = { disk : Disk.t; table : ('k, 'v) Hashtbl.t }

let create ~disk () = { disk; table = Hashtbl.create 64 }

let put t k v =
  Disk.force t.disk;
  Hashtbl.replace t.table k v

let get t k = Hashtbl.find_opt t.table k

let remove t k =
  Disk.force t.disk;
  Hashtbl.remove t.table k

let bindings t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
