lib/dsim/heap.mli:
