lib/dsim/heap.ml: Array
