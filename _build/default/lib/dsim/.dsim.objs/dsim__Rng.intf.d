lib/dsim/rng.mli:
