lib/dsim/trace.ml: Format Hashtbl List Option String Types
