lib/dsim/types.ml: Format
