lib/dsim/engine.ml: Array Effect Float Heap List Printf Rng Trace Types
