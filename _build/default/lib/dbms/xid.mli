(** Transaction / result identifiers.

    The paper identifies a result and its transaction by the same integer
    [j], scoped to one client request. We carry the request identifier
    explicitly so that a deployment can serve many requests (and clients)
    while each request keeps the paper's [j = 1, 2, ...] retry counter. *)

type t = { rid : int;  (** request identifier *) j : int  (** try number *) }

val make : rid:int -> j:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
