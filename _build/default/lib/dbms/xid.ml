type t = { rid : int; j : int }

let make ~rid ~j = { rid; j }

let equal a b = a.rid = b.rid && a.j = b.j

let compare a b =
  match compare a.rid b.rid with 0 -> compare a.j b.j | c -> c

let pp ppf t = Format.fprintf ppf "r%d.%d" t.rid t.j

let to_string t = Format.asprintf "%a" pp t
