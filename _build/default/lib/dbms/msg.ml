(** Wire messages understood by a database server.

    [Prepare]/[Vote_msg]/[Decide]/[Ack_decide]/[Ready] are the paper's
    Figure 3 message types; [Exec_req]/[Exec_reply] carry the business-logic
    manipulation the paper abstracts as "transactional manipulation";
    [Commit1]/[Commit1_reply] support the unreliable baseline protocol's
    single-phase commit (Fig. 7a). *)

type Dsim.Types.payload +=
  | Xa_start of { xid : Xid.t }
  | Xa_started of { xid : Xid.t }
  | Xa_end of { xid : Xid.t }
  | Xa_ended of { xid : Xid.t }
  | Exec_req of { xid : Xid.t; ops : Rm.op list }
  | Exec_reply of { xid : Xid.t; reply : Rm.exec_reply }
  | Prepare of { xid : Xid.t }
  | Vote_msg of { xid : Xid.t; vote : Rm.vote }
  | Decide of { xid : Xid.t; outcome : Rm.outcome }
  | Ack_decide of { xid : Xid.t }
  | Ready
  | Commit1 of { xid : Xid.t }
  | Commit1_reply of { xid : Xid.t; outcome : Rm.outcome }
