(** Values stored in the database. *)

type t =
  | Int of int  (** account balances, seat counts, ... *)
  | Str of string  (** booking records, reservation numbers, ... *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
