lib/dbms/rm.ml: Dsim Dstore Engine Hashtbl List Option String Value Xid
