lib/dbms/stub.ml: Dnet Dsim Engine Hashtbl List Msg Option Rchannel Rm Types Xid
