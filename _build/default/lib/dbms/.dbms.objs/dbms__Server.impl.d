lib/dbms/server.ml: Dnet Dsim Engine Msg Rchannel Rm Types
