lib/dbms/xid.ml: Format
