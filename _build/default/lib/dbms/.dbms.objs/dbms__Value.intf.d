lib/dbms/value.mli: Format
