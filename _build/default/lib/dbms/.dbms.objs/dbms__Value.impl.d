lib/dbms/value.ml: Format String
