lib/dbms/rm.mli: Dstore Value Xid
