lib/dbms/server.mli: Dsim Engine Rm Types
