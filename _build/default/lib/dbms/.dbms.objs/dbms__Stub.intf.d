lib/dbms/stub.mli: Dnet Dsim Rm Types Xid
