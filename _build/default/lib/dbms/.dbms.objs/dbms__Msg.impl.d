lib/dbms/msg.ml: Dsim Rm Xid
