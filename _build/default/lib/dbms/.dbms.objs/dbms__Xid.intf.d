lib/dbms/xid.mli: Format
