type t = Int of int | Str of string

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Int _, Str _ | Str _, Int _ -> false

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v
