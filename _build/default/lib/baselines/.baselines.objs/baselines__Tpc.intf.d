lib/baselines/tpc.mli: Dbms Dsim Dstore Engine Etx Stats Types
