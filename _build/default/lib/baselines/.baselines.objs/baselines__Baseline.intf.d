lib/baselines/baseline.mli: Dbms Dsim Engine Etx Stats Types
