lib/baselines/tpc.ml: Baseline Dbms Dnet Dsim Dstore Engine Etx Hashtbl List Netmodel Printf Rchannel Stats Types
