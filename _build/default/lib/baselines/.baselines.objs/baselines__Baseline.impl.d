lib/baselines/baseline.ml: Dbms Dnet Dsim Dstore Engine Etx Hashtbl List Netmodel Printf Rchannel Stats Types
