lib/baselines/pbackup.ml: Baseline Dbms Dnet Dsim Engine Etx Fdetect Hashtbl List Netmodel Printf Rchannel Stats Types
