lib/baselines/pbackup.mli: Dbms Dnet Dsim Engine Etx Stats Types
