type t = { agent : Agent.t; name : string }

let array agent ~name = { agent; name }

let key t ~j = Printf.sprintf "%s[%d]" t.name j

let write t ~j v = Agent.propose t.agent ~key:(key t ~j) v

let read t ~j = Agent.peek t.agent ~key:(key t ~j)
