lib/consensus/agent.ml: Dnet Dsim Dstore Engine Fdetect Hashtbl List Option Rchannel String Types
