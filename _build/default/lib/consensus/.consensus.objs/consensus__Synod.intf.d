lib/consensus/synod.mli: Dnet Dsim Types
