lib/consensus/woreg.mli: Agent Dsim Types
