lib/consensus/synod.ml: Dnet Dsim Engine Float Hashtbl List Rchannel String Types
