lib/consensus/agent.mli: Dnet Dsim Dstore Types
