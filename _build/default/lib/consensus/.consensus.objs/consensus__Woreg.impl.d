lib/consensus/woreg.ml: Agent Printf
