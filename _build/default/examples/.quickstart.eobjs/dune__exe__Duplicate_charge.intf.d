examples/duplicate_charge.mli:
