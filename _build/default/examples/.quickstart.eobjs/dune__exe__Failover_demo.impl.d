examples/failover_demo.ml: Dbms Dsim Etx Harness List Printf String Workload
