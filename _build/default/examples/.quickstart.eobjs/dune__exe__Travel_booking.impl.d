examples/travel_booking.ml: Dbms Etx List Printf Workload
