examples/quickstart.ml: Dbms Etx List Printf Workload
