examples/duplicate_charge.ml: Baselines Dbms Dsim Etx List Printf Workload
