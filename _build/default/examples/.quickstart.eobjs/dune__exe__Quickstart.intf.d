examples/quickstart.mli:
