examples/recoverable_cluster.mli:
