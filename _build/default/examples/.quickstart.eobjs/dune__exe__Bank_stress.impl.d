examples/bank_stress.ml: Dbms Dnet Dsim Etx Format Fun List Printf Stats Workload
