examples/bank_stress.mli:
