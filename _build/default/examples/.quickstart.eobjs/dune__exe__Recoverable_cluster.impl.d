examples/recoverable_cluster.ml: Dbms Dsim Etx List Printf Workload
