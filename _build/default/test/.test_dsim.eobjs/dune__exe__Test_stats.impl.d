test/test_stats.ml: Alcotest Dsim Float Gen List QCheck QCheck_alcotest Stats String
