test/test_dstore.ml: Alcotest Dsim Dstore Engine List QCheck QCheck_alcotest Trace
