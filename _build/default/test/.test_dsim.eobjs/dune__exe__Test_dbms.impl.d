test/test_dbms.ml: Alcotest Dbms Dnet Dsim Dstore Gen List Option Printf QCheck QCheck_alcotest Rm Server Stub Value Xid
