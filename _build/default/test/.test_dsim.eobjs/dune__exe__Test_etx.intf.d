test/test_etx.mli:
