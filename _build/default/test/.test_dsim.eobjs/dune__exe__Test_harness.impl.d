test/test_harness.ml: Alcotest Dnet Dsim Etx Experiments Float Harness Lazy List Msgclass Printf Seqdiag String
