test/test_dnet.ml: Alcotest Dnet Dsim Engine Fdetect List Netmodel QCheck QCheck_alcotest Rchannel Rng Types
