test/test_dsim.ml: Alcotest Dsim Engine Hashtbl Heap List Option Printf QCheck QCheck_alcotest Rng Trace Types
