test/test_workload.ml: Alcotest Dbms Etx List QCheck QCheck_alcotest String Workload
