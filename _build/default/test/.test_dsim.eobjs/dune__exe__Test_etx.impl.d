test/test_etx.ml: Alcotest Appserver Business Client Dbms Deployment Dnet Dsim Etx Etx_types Hashtbl List Option Printf QCheck QCheck_alcotest Spec String Workload
