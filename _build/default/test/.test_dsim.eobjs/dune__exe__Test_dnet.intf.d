test/test_dnet.mli:
