test/test_dstore.mli:
