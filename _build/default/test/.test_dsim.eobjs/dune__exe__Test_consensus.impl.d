test/test_consensus.ml: Alcotest Array Consensus Dnet Dsim Engine Fdetect Fun List Netmodel Printf QCheck QCheck_alcotest Rchannel Types
