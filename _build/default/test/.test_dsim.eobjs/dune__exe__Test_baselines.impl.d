test/test_baselines.ml: Alcotest Baselines Dbms Dnet Dsim Dstore Etx List Printf Workload
