test/test_dsim.mli:
