(* Benchmark harness.

   Running this executable regenerates every table and figure of the paper's
   evaluation (Appendix 3) plus the ablations listed in DESIGN.md, then runs
   a Bechamel suite with one [Test.make] per experiment (wall-clock cost of
   regenerating each artefact) and micro-benchmarks of the simulation
   substrate.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- figure8 # one artefact
     (artefacts: figure8 figure7 figure1 failover backoff loss dbs
      persistence consensus-failover throughput micro) *)

let section title body =
  Printf.printf "== %s ==\n%s\n\n%!" title body

let run_figure8 () =
  section "E1/E4 (paper Figure 8)"
    (Harness.Experiments.render_figure8 (Harness.Experiments.figure8 ()))

let run_figure7 () =
  section "E2 (paper Figure 7)"
    (Harness.Experiments.render_figure7 (Harness.Experiments.figure7 ()))

let run_figure1 () =
  section "E3 (paper Figure 1)"
    (Harness.Experiments.render_figure1 (Harness.Experiments.figure1 ()))

let run_failover () =
  section "A1 (ablation)"
    (Harness.Experiments.render_failover (Harness.Experiments.failover_sweep ()))

let run_backoff () =
  section "A2 (ablation)"
    (Harness.Experiments.render_backoff (Harness.Experiments.backoff_sweep ()))

let run_loss () =
  section "A3 (ablation)"
    (Harness.Experiments.render_loss (Harness.Experiments.loss_sweep ()))

let run_dbs () =
  section "A4 (ablation)"
    (Harness.Experiments.render_dbs (Harness.Experiments.db_sweep ()))

let run_persistence () =
  section "A5 (ablation)"
    (Harness.Experiments.render_persistence
       (Harness.Experiments.persistence_ablation ()))

let run_consensus_failover () =
  section "A6 (ablation)"
    (Harness.Experiments.render_consensus_failover
       (Harness.Experiments.consensus_failover_sweep ()))

let run_throughput () =
  section "A7 (ablation)"
    (Harness.Experiments.render_throughput
       (Harness.Experiments.throughput_sweep ()))

let run_register_backends () =
  section "A8 (ablation)"
    (Harness.Experiments.render_register_backends
       (Harness.Experiments.register_backend_comparison ()))

let run_fd_quality () =
  section "A9 (ablation)"
    (Harness.Experiments.render_fd_quality
       (Harness.Experiments.fd_quality_sweep ()))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite *)

open Bechamel

let micro_tests =
  let heap_bench () =
    let h = Dsim.Heap.create ~leq:(fun (a : int) b -> a <= b) () in
    for i = 0 to 999 do
      Dsim.Heap.push h ((i * 7919) mod 1000)
    done;
    let rec drain () = match Dsim.Heap.pop h with None -> () | Some _ -> drain () in
    drain ()
  in
  let rng_bench () =
    let r = Dsim.Rng.create ~seed:1 in
    let acc = ref 0L in
    for _ = 0 to 999 do
      acc := Int64.add !acc (Dsim.Rng.int64 r)
    done;
    !acc
  in
  let one_etx () =
    let d =
      Etx.Deployment.build ~business:Etx.Business.trivial
        ~script:(fun ~issue -> ignore (issue "x"))
        ()
    in
    ignore (Etx.Deployment.run_to_quiescence d)
  in
  let one_consensus () =
    (* a full three-member wo-register write *)
    let value = Etx.Etx_types.Reg_a_value 0 in
    let t = Dsim.Engine.create () in
    let peers = [ 0; 1; 2 ] in
    let decided = ref false in
    List.iter
      (fun i ->
        let pid =
          Dsim.Engine.spawn t ~name:(Printf.sprintf "m%d" i)
            ~main:(fun ~recovery:_ () ->
              let ch = Dnet.Rchannel.create () in
              Dnet.Rchannel.start ch;
              let fd = Dnet.Fdetect.oracle t in
              let agent = Consensus.Agent.create ~peers ~fd ~ch () in
              Consensus.Agent.start agent;
              if i = 0 then begin
                ignore (Consensus.Agent.propose agent ~key:"k" value);
                decided := true
              end)
        in
        assert (pid = i))
      peers;
    ignore (Dsim.Engine.run_until ~deadline:10_000. t (fun () -> !decided))
  in
  Test.make_grouped ~name:"etx"
    [
      Test.make ~name:"heap-1k-push-pop" (Staged.stage heap_bench);
      Test.make ~name:"rng-1k" (Staged.stage rng_bench);
      Test.make ~name:"consensus-write" (Staged.stage one_consensus);
      Test.make ~name:"one-e-transaction" (Staged.stage one_etx);
      Test.make ~name:"figure1-suite"
        (Staged.stage (fun () -> ignore (Harness.Experiments.figure1 ())));
      Test.make ~name:"figure7-suite"
        (Staged.stage (fun () -> ignore (Harness.Experiments.figure7 ())));
      Test.make ~name:"figure8-table-5txn"
        (Staged.stage (fun () ->
             ignore (Harness.Experiments.figure8 ~transactions:5 ())));
    ]

let run_micro () =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] micro_tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "== Bechamel micro-benchmarks (wall-clock per run) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "  %-28s (no estimate)\n" name
      else if ns > 1e6 then Printf.printf "  %-28s %8.2f ms\n" name (ns /. 1e6)
      else Printf.printf "  %-28s %8.2f us\n" name (ns /. 1e3))
    (List.sort compare !rows);
  print_newline ()

let all () =
  run_figure8 ();
  run_figure7 ();
  run_figure1 ();
  run_failover ();
  run_backoff ();
  run_loss ();
  run_dbs ();
  run_persistence ();
  run_consensus_failover ();
  run_throughput ();
  run_register_backends ();
  run_fd_quality ();
  run_micro ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> all ()
  | _ :: args ->
      List.iter
        (function
          | "figure8" -> run_figure8 ()
          | "figure7" -> run_figure7 ()
          | "figure1" -> run_figure1 ()
          | "failover" -> run_failover ()
          | "backoff" -> run_backoff ()
          | "loss" -> run_loss ()
          | "dbs" -> run_dbs ()
          | "persistence" -> run_persistence ()
          | "consensus-failover" -> run_consensus_failover ()
          | "throughput" -> run_throughput ()
          | "registers" -> run_register_backends ()
          | "fd-quality" -> run_fd_quality ()
          | "micro" -> run_micro ()
          | other ->
              Printf.eprintf
                "unknown artefact %S (expected \
                 figure8|figure7|figure1|failover|backoff|loss|dbs|persistence|consensus-failover|throughput|registers|fd-quality|micro)\n"
                other;
              exit 2)
        args
  | [] -> all ()
