(* etx-sim: command-line driver for the e-Transaction simulator.

   Subcommands either regenerate one of the paper's evaluation artefacts
   (figure8 / figure7 / figure1 / ablations) or run a demo scenario with a
   chosen workload, fault schedule and verbosity. *)

open Cmdliner

let seed_arg =
  let doc = "Random seed (identical seeds give identical executions)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let csv_arg =
  let doc = "Also write the result as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let domains_arg =
  let doc =
    "Run the sweep's trials on $(docv) domains in parallel. Results are \
     bit-identical to --domains 1; only wall-clock time changes."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D" ~doc)

let set_domains d = Harness.Experiments.default_domains := max 1 d

let emit ~csv table csv_string =
  print_endline table;
  match csv with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc csv_string;
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "wrote %s\n" file

(* ---------------- experiment subcommands ---------------- *)

let figure8_cmd =
  let transactions =
    let doc = "Number of identical transactions per protocol." in
    Arg.(value & opt int 40 & info [ "n"; "transactions" ] ~docv:"N" ~doc)
  in
  let run transactions seed csv domains =
    set_domains domains;
    let f = Harness.Experiments.figure8 ~transactions ~seed () in
    emit ~csv
      (Harness.Experiments.render_figure8 f)
      (Harness.Experiments.csv_figure8 f)
  in
  Cmd.v
    (Cmd.info "figure8" ~doc:"Latency components table (paper Figure 8).")
    Term.(const run $ transactions $ seed_arg $ csv_arg $ domains_arg)

let figure7_cmd =
  let run seed csv domains =
    set_domains domains;
    let rows = Harness.Experiments.figure7 ~seed () in
    emit ~csv
      (Harness.Experiments.render_figure7 rows)
      (Harness.Experiments.csv_figure7 rows)
  in
  Cmd.v
    (Cmd.info "figure7"
       ~doc:"Communication steps in failure-free runs (paper Figure 7).")
    Term.(const run $ seed_arg $ csv_arg $ domains_arg)

let figure1_cmd =
  let run seed csv domains =
    set_domains domains;
    let scenarios = Harness.Experiments.figure1 ~seed () in
    emit ~csv
      (Harness.Experiments.render_figure1 scenarios)
      (Harness.Experiments.csv_figure1 scenarios)
  in
  Cmd.v
    (Cmd.info "figure1" ~doc:"The four canonical executions (paper Figure 1).")
    Term.(const run $ seed_arg $ csv_arg $ domains_arg)

let sweep_cmd name doc render to_csv sweep =
  let run seed csv domains =
    set_domains domains;
    let rows = sweep ~seed () in
    emit ~csv (render rows) (to_csv rows)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ seed_arg $ csv_arg $ domains_arg)

let failover_cmd =
  sweep_cmd "failover" "Ablation A1: fail-over latency vs detector timeout."
    Harness.Experiments.render_failover
    (Harness.Experiments.csv_sweep2 ~header:"fd_timeout_ms,latency_ms,tries")
    (fun ~seed () -> Harness.Experiments.failover_sweep ~seed ())

let backoff_cmd =
  sweep_cmd "backoff" "Ablation A2: client back-off period sensitivity."
    Harness.Experiments.render_backoff Harness.Experiments.csv_backoff
    (fun ~seed () -> Harness.Experiments.backoff_sweep ~seed ())

let loss_cmd =
  sweep_cmd "loss" "Ablation A3: message-loss tolerance."
    Harness.Experiments.render_loss
    (Harness.Experiments.csv_sweep2 ~header:"loss_rate,latency_ms,msgs_per_request")
    (fun ~seed () -> Harness.Experiments.loss_sweep ~seed ())

let dbs_cmd =
  sweep_cmd "dbs" "Ablation A4: latency vs number of databases."
    Harness.Experiments.render_dbs Harness.Experiments.csv_dbs
    (fun ~seed () -> Harness.Experiments.db_sweep ~seed ())

let persistence_cmd =
  let run seed domains =
    set_domains domains;
    print_endline
      (Harness.Experiments.render_persistence
         (Harness.Experiments.persistence_ablation ~seed ()))
  in
  Cmd.v
    (Cmd.info "persistence"
       ~doc:"Ablation A5: the latency cost of recoverable (disk-backed) \
             application servers.")
    Term.(const run $ seed_arg $ domains_arg)

let consensus_failover_cmd =
  let run seed domains =
    set_domains domains;
    print_endline
      (Harness.Experiments.render_consensus_failover
         (Harness.Experiments.consensus_failover_sweep ~seed ()))
  in
  Cmd.v
    (Cmd.info "consensus-failover"
       ~doc:"Ablation A6: register-write latency under a crashed coordinator \
             vs the consensus round timeout.")
    Term.(const run $ seed_arg $ domains_arg)

let fd_quality_cmd =
  let run seed domains =
    set_domains domains;
    print_endline
      (Harness.Experiments.render_fd_quality
         (Harness.Experiments.fd_quality_sweep ~seed ()))
  in
  Cmd.v
    (Cmd.info "fd-quality"
       ~doc:"Ablation A9: spurious cleanings and retries vs the suspicion \
             timeout.")
    Term.(const run $ seed_arg $ domains_arg)

let failover_phases_cmd =
  let run seed domains =
    set_domains domains;
    print_endline
      (Harness.Experiments.render_failover_phases
         (Harness.Experiments.failover_phases ~seed ()))
  in
  Cmd.v
    (Cmd.info "failover-phases"
       ~doc:"Ablation A12: per-phase latency attribution of the fail-over \
             path, measured from the observability span layer.")
    Term.(const run $ seed_arg $ domains_arg)

let read_cache_cmd =
  let run seed csv domains =
    set_domains domains;
    let rows = Harness.Experiments.read_sweep ~seed () in
    emit ~csv
      (Harness.Experiments.render_read rows)
      (Harness.Experiments.csv_read rows)
  in
  Cmd.v
    (Cmd.info "read-cache"
       ~doc:
         "Ablation A14: the app-server method cache under a read-heavy mix \
          — read throughput, messages per read and hit rate across server \
          counts, cache on vs off (spec incl. cache coherence asserted per \
          row).")
    Term.(const run $ seed_arg $ csv_arg $ domains_arg)

let batch_cmd =
  let run seed csv domains =
    set_domains domains;
    let rows = Harness.Experiments.batch_sweep ~seed () in
    emit ~csv
      (Harness.Experiments.render_batch rows)
      (Harness.Experiments.csv_batch rows);
    print_endline
      (Harness.Experiments.render_batch_phases
         (Harness.Experiments.batch_phases ~seed ()))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Ablation A13: throughput and message amortization of the \
             batched commit pipeline vs the window cap, plus the amortized \
             per-phase cost table.")
    Term.(const run $ seed_arg $ csv_arg $ domains_arg)

let storage_cmd =
  let run seed csv domains =
    set_domains domains;
    let gc = Harness.Experiments.group_commit_sweep ~seed () in
    emit ~csv:(Option.map (fun f -> f ^ ".gc.csv") csv)
      (Harness.Experiments.render_gc gc)
      (Harness.Experiments.csv_gc gc);
    let recovery = Harness.Experiments.recovery_sweep ~seed () in
    emit ~csv:(Option.map (fun f -> f ^ ".recovery.csv") csv)
      (Harness.Experiments.render_recovery recovery)
      (Harness.Experiments.csv_recovery recovery);
    let replica = Harness.Experiments.replica_sweep ~seed () in
    emit ~csv:(Option.map (fun f -> f ^ ".replica.csv") csv)
      (Harness.Experiments.render_replica replica)
      (Harness.Experiments.csv_replica replica)
  in
  Cmd.v
    (Cmd.info "storage"
       ~doc:
         "Ablation A15: the log-structured storage tier — disk forces per \
          commit vs the window cap under the group-commit scheduler, \
          checkpoint-bounded recovery replay, and read throughput served \
          from change-log replicas (with --csv FILE, writes FILE.gc.csv, \
          FILE.recovery.csv and FILE.replica.csv).")
    Term.(const run $ seed_arg $ csv_arg $ domains_arg)

let throughput_cmd =
  let run seed domains =
    set_domains domains;
    print_endline
      (Harness.Experiments.render_throughput
         (Harness.Experiments.throughput_sweep ~seed ()))
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:"Ablation A7: aggregate throughput vs concurrent clients.")
    Term.(const run $ seed_arg $ domains_arg)

let shard_cmd =
  let run seed domains =
    set_domains domains;
    print_endline
      (Harness.Experiments.render_shard
         (Harness.Experiments.shard_sweep ~seed ()))
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"Ablation A11: virtual-time throughput vs shard count (independent \
             replica groups).")
    Term.(const run $ seed_arg $ domains_arg)

let cross_cmd =
  let run seed domains =
    set_domains domains;
    print_endline
      (Harness.Experiments.render_cross
         (Harness.Experiments.cross_sweep ~seed ()))
  in
  Cmd.v
    (Cmd.info "cross"
       ~doc:
         "Ablation A16: cross-shard commit (Paxos Commit over the replica \
          groups) — throughput and messages per commit vs the cross-shard \
          fraction of the workload.")
    Term.(const run $ seed_arg $ domains_arg)

(* ---------------- demo subcommand ---------------- *)

type workload_choice = W_bank | W_transfer | W_travel | W_mixed

let workload_conv =
  let parse = function
    | "bank" -> Ok W_bank
    | "transfer" -> Ok W_transfer
    | "travel" -> Ok W_travel
    | "mixed" -> Ok W_mixed
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  let print ppf w =
    Format.pp_print_string ppf
      (match w with
      | W_bank -> "bank"
      | W_transfer -> "transfer"
      | W_travel -> "travel"
      | W_mixed -> "mixed")
  in
  Arg.conv (parse, print)

(* Write the registry's Prometheus dump, then re-parse the dump itself (the
   artifact CI archives) and cross-check the committed counter against the
   clients' delivered records. Returns false on mismatch. *)
let write_obs_dump ~file ~delivered reg =
  let dump = Obs.Export_prom.to_string reg in
  let oc = open_out file in
  output_string oc dump;
  close_out oc;
  Printf.eprintf "wrote %s\n" file;
  let committed =
    int_of_float
      (List.fold_left ( +. ) 0.
         (Obs.Export_prom.counter_values dump ~metric:"etx_client_committed"))
  in
  if committed <> delivered then begin
    Printf.printf
      "OBS INCONSISTENCY: etx_client_committed=%d in %s but %d records \
       delivered\n"
      committed file delivered;
    false
  end
  else begin
    Printf.printf "obs: etx_client_committed=%d matches delivered records\n"
      committed;
    true
  end

(* Sharded demo: [shards] replica groups, [clients] clients, keyed bodies
   drawn from the workload generator (transfers stay intra-shard), requests
   dealt round-robin to the clients. Faults target shard 0. *)
let demo_run_cluster seed workload requests n_app_servers n_dbs shards clients
    batch cache replicas replica_bound group_commit force_latency cross_ratio
    crash_primary_at crash_db obs =
  let kind =
    let accounts = max 8 (4 * shards) in
    match workload with
    | W_bank -> Workload.Generator.Bank_updates { accounts; max_delta = 100 }
    | W_transfer ->
        Workload.Generator.Bank_transfers { accounts; max_amount = 100 }
    | W_travel ->
        Workload.Generator.Travel_bookings
          {
            destinations = [ "paris"; "tokyo"; "oslo"; "lima" ];
            max_party = 3;
          }
    | W_mixed ->
        Workload.Generator.Read_heavy
          { accounts; max_delta = 100; reads_per_write = 3 }
  in
  let map = Etx.Shard_map.create ~shards () in
  let bodies =
    Workload.Generator.sharded_bodies ~map ~cross_ratio ~seed
      ~n:(clients * requests) kind
    |> List.map snd
  in
  (* deal bodies round-robin: client i gets bodies i, i+clients, ... *)
  let script_for i ~issue =
    List.iteri (fun k body -> if k mod clients = i then ignore (issue body)) bodies
  in
  let reg = Option.map (fun _ -> Obs.Registry.create ()) obs in
  let engine, c =
    Harness.Simrun.cluster ~seed ~map ?obs:reg ~n_app_servers ~n_dbs ~batch
      ~cache ~replicas ~replica_bound ~group_commit
      ~cross:(cross_ratio > 0.) ~disk_force_latency:force_latency
      ~client_period:300.
      ~seed_data:(Workload.Generator.seed_data_of kind)
      ~business:(Workload.Generator.business_of kind)
      ~scripts:(List.init clients script_for)
      ()
  in
  (match crash_primary_at with
  | Some t -> Dsim.Engine.crash_at engine t (Cluster.primary c ~shard:0)
  | None -> ());
  (match crash_db with
  | Some t ->
      let db = fst (List.hd (Cluster.group c 0).Cluster.dbs) in
      Dsim.Engine.crash_at engine t db;
      Dsim.Engine.recover_at engine (t +. 200.) db
  | None -> ());
  let quiesced = Cluster.run_to_quiescence ~deadline:600_000. c in
  Printf.printf "quiesced: %b (virtual time %.1f ms, %d shards, %d clients)\n"
    quiesced
    (Dsim.Engine.now_of engine)
    shards clients;
  List.iter
    (fun (r : Etx.Client.record) ->
      Printf.printf
        "  request %d %-24s -> shard %d %-32s (tries=%d, latency=%.1f ms)\n"
        r.rid r.body
        (Cluster.shard_of_key c r.key)
        r.result r.tries
        (r.delivered_at -. r.issued_at))
    (Cluster.all_records c);
  if replicas > 0 then
    Array.iter
      (fun g ->
        List.iter
          (fun (_, rep, _) ->
            Printf.printf "  replica %-12s applied=%d lag=%d served=%d\n"
              (Dbms.Replica.name rep)
              (Dbms.Replica.applied_lsn rep)
              (Dbms.Replica.lag rep) (Dbms.Replica.served rep))
          g.Cluster.replicas)
      c.Cluster.groups;
  let violations = Cluster.Spec.check_all c in
  let violations =
    violations
    @ (match reg with
      | Some reg -> Cluster.Spec.obs_consistency reg c
      | None -> [])
  in
  (match violations with
  | [] -> print_endline "specification: all properties hold on every shard"
  | vs ->
      print_endline "SPECIFICATION VIOLATIONS:";
      List.iter (fun v -> print_endline ("  " ^ v)) vs);
  let obs_ok =
    match (obs, reg) with
    | Some file, Some reg ->
        write_obs_dump ~file
          ~delivered:(List.length (Cluster.all_records c))
          reg
    | _ -> true
  in
  if (not quiesced) || violations <> [] || not obs_ok then exit 1

let demo_run seed workload requests n_app_servers n_dbs shards clients batch
    cache replicas replica_bound group_commit force_latency cross_ratio
    crash_primary_at crash_db verbose diagram obs =
  if shards < 1 then (Printf.eprintf "--shards must be >= 1\n"; exit 2);
  if clients < 1 then (Printf.eprintf "--clients must be >= 1\n"; exit 2);
  if batch < 1 then (Printf.eprintf "--batch must be >= 1\n"; exit 2);
  if replicas < 0 then (Printf.eprintf "--replicas must be >= 0\n"; exit 2);
  if cross_ratio < 0. || cross_ratio > 1. then
    (Printf.eprintf "--cross-ratio must be in [0, 1]\n"; exit 2);
  if cross_ratio > 0. && shards < 2 then
    (Printf.eprintf "--cross-ratio needs --shards >= 2\n"; exit 2);
  if shards > 1 || clients > 1 then
    demo_run_cluster seed workload requests n_app_servers n_dbs shards clients
      batch cache replicas replica_bound group_commit force_latency cross_ratio
      crash_primary_at crash_db obs
  else
  let business, seed_data, body_of =
    match workload with
    | W_bank ->
        ( Workload.Bank.update,
          Workload.Bank.seed_accounts [ ("acct0", 1_000_000) ],
          fun i -> Printf.sprintf "acct0:%d" (i + 1) )
    | W_transfer ->
        ( Workload.Bank.transfer,
          Workload.Bank.seed_accounts [ ("acct0", 500); ("acct1", 0) ],
          fun _ -> "acct0:acct1:100" )
    | W_travel ->
        ( Workload.Travel.book,
          Workload.Travel.seed_inventory ~destinations:[ "paris"; "tokyo" ]
            ~seats:5 ~rooms:5 ~cars:5,
          fun i -> if i mod 2 = 0 then "paris:2" else "tokyo:1" )
    | W_mixed ->
        (* three audits then an update, all on one hot account, so repeat
           reads hit the cache and the update invalidates them *)
        ( Workload.Bank.mixed,
          Workload.Bank.seed_accounts [ ("acct0", 1_000) ],
          fun i -> if i mod 4 = 3 then "acct0:7" else "acct0" )
  in
  (* verbose mode reads its work breakdown from the registry's
     [work.<label>] histograms, so it needs one even without -obs *)
  let reg =
    if verbose || obs <> None then Some (Obs.Registry.create ()) else None
  in
  let engine, d =
    Harness.Simrun.deployment ~seed ?obs:reg ~n_app_servers ~n_dbs ~batch
      ~cache ~replicas ~replica_bound ~group_commit
      ~disk_force_latency:force_latency ~client_period:300. ~seed_data
      ~business
      ~script:(fun ~issue ->
        for i = 0 to requests - 1 do
          ignore (issue (body_of i))
        done)
      ()
  in
  (match crash_primary_at with
  | Some t -> Dsim.Engine.crash_at engine t (Etx.Deployment.primary d)
  | None -> ());
  (match crash_db with
  | Some t ->
      let db = fst (List.hd d.dbs) in
      Dsim.Engine.crash_at engine t db;
      Dsim.Engine.recover_at engine (t +. 200.) db
  | None -> ());
  let quiesced = Etx.Deployment.run_to_quiescence ~deadline:600_000. d in
  Printf.printf "quiesced: %b (virtual time %.1f ms)\n" quiesced
    (Dsim.Engine.now_of engine);
  List.iter
    (fun (r : Etx.Client.record) ->
      Printf.printf
        "  request %d %-24s -> %-40s (tries=%d, latency=%.1f ms)\n" r.rid
        r.body r.result r.tries
        (r.delivered_at -. r.issued_at))
    (Etx.Client.records d.client);
  if replicas > 0 then
    List.iter
      (fun (_, rep, _) ->
        Printf.printf "  replica %-12s applied=%d lag=%d served=%d\n"
          (Dbms.Replica.name rep)
          (Dbms.Replica.applied_lsn rep)
          (Dbms.Replica.lag rep) (Dbms.Replica.served rep))
      d.Etx.Deployment.replicas;
  let violations = Etx.Spec.check_all d in
  (match violations with
  | [] -> print_endline "specification: all properties hold"
  | vs ->
      print_endline "SPECIFICATION VIOLATIONS:";
      List.iter (fun v -> print_endline ("  " ^ v)) vs);
  if verbose then begin
    let trace = Dsim.Engine.trace engine in
    Printf.printf "protocol messages: %d, communication steps: %d\n"
      (Harness.Msgclass.protocol_messages trace)
      (Harness.Msgclass.protocol_steps trace);
    Format.printf "trace: %a@." Dsim.Trace.pp_stats (Dsim.Trace.stats trace);
    match reg with
    | Some reg ->
        (* work totals per category, from the [work.<label>] histograms
           (counts and quantiles also live there) *)
        let work_names =
          List.sort_uniq String.compare
            (List.filter_map
               (fun ({ Obs.Registry.name; _ }, _) ->
                 if String.length name > 5 && String.sub name 0 5 = "work."
                 then Some name
                 else None)
               (Obs.Registry.histograms reg))
        in
        List.iter
          (fun name ->
            match Obs.Registry.merged_histogram reg name with
            | Some h ->
                Printf.printf "  work[%s] = %.1f ms over %d slices\n"
                  (String.sub name 5 (String.length name - 5))
                  (Obs.Histogram.sum h) (Obs.Histogram.count h)
            | None -> ())
          work_names
    | None -> ()
  end;
  if diagram then begin
    print_endline "--- message sequence diagram ---";
    print_string (Harness.Seqdiag.of_engine engine)
  end;
  let obs_ok =
    match (obs, reg) with
    | Some file, Some reg ->
        write_obs_dump ~file
          ~delivered:(List.length (Etx.Client.records d.client))
          reg
    | _ -> true
  in
  if (not quiesced) || violations <> [] || not obs_ok then exit 1

let demo_cmd =
  let workload =
    Arg.(
      value
      & opt workload_conv W_bank
      & info [ "w"; "workload" ] ~docv:"bank|transfer|travel|mixed"
          ~doc:
            "Business logic to run (mixed = read-dominant bank audits with \
             interleaved updates).")
  in
  let requests =
    Arg.(
      value & opt int 3
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Requests to issue.")
  in
  let apps =
    Arg.(
      value & opt int 3
      & info [ "app-servers" ] ~docv:"M" ~doc:"Application servers.")
  in
  let dbs =
    Arg.(
      value & opt int 1
      & info [ "databases" ] ~docv:"K" ~doc:"Database servers.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Partition the key space across $(docv) independent replica \
             groups (each with its own app servers, databases and failure \
             detector); requests route by key. With S > 1 the fault flags \
             target shard 0.")
  in
  let clients =
    Arg.(
      value & opt int 1
      & info [ "clients" ] ~docv:"C"
          ~doc:"Concurrent clients behind the shard router.")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"B"
          ~doc:
            "Window cap of the leased, batched commit pipeline on every \
             application server (1 = the classic per-request path).")
  in
  let cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Equip every application server with a method cache (read-only \
             calls served without a transaction) and every database with \
             commit-piggybacked invalidation; the cache-coherence obligation \
             joins the specification checks.")
  in
  let replicas =
    Arg.(
      value & opt int 0
      & info [ "replicas" ] ~docv:"R"
          ~doc:
            "Asynchronous change-log read replicas per database: primaries \
             ship committed write-sets off the commit path, app servers \
             route cache-miss read-only requests to a replica and fall back \
             to the primary when provable staleness exceeds the bound; the \
             replica-consistency obligation joins the specification checks \
             (0 = the classic primary-only read path).")
  in
  let replica_bound =
    Arg.(
      value & opt int 8
      & info [ "replica-bound" ] ~docv:"L"
          ~doc:
            "Staleness bound for replica reads (LSN delta between the \
             primary's committed watermark and the replica's applied \
             prefix); a lagging replica answers stale and the request falls \
             back to the primary.")
  in
  let group_commit =
    Arg.(
      value & flag
      & info [ "group-commit" ]
          ~doc:
            "Coalesce concurrent redo-log forces on every database into one \
             disk write per group-commit window (amortizes the forced write \
             the same way the batched pipeline amortizes consensus).")
  in
  let force_latency =
    Arg.(
      value & opt float 12.5
      & info [ "force-latency" ] ~docv:"MS"
          ~doc:"Latency of one forced redo-log disk write (default 12.5).")
  in
  let cross_ratio =
    Arg.(
      value & opt float 0.
      & info [ "cross-ratio" ] ~docv:"R"
          ~doc:
            "Fraction of transfer bodies whose destination account lives on \
             a foreign shard (deterministic interleave). Any positive value \
             builds the cluster with the cross-shard commit wiring, so those \
             transfers commit atomically across their replica groups via \
             Paxos Commit; 0 (the default) keeps the classic group-local \
             path, record-for-record. Needs --shards >= 2.")
  in
  let crash_primary =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash-primary-at" ] ~docv:"MS"
          ~doc:
            "Crash the default primary at this virtual time (ms). With \
             --cross-ratio > 0 shard 0's primary is the coordinator of every \
             cross transfer homed there, so this exercises the \
             takeover-completion path.")
  in
  let crash_db =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash-db-at" ] ~docv:"MS"
          ~doc:"Crash db1 at this virtual time; it recovers 200 ms later.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print trace statistics.")
  in
  let diagram =
    Arg.(
      value & flag
      & info [ "diagram" ] ~doc:"Print the message sequence diagram.")
  in
  let obs =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs" ] ~docv:"FILE"
          ~doc:
            "Attach an observability registry to the run and write its \
             Prometheus text dump to $(docv). The dump is re-parsed and the \
             committed counter cross-checked against the delivered records \
             (non-zero exit on mismatch); with --shards > 1 the cluster-level \
             obs-consistency checks run too.")
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:
         "Run a deployment with a chosen workload and fault schedule, print \
          delivered results and check the e-Transaction specification.")
    Term.(
      const demo_run $ seed_arg $ workload $ requests $ apps $ dbs $ shards
      $ clients $ batch $ cache $ replicas $ replica_bound $ group_commit
      $ force_latency $ cross_ratio $ crash_primary $ crash_db $ verbose
      $ diagram $ obs)

let main_cmd =
  let doc =
    "e-Transaction protocol simulator (Frølund & Guerraoui, DSN 2000)"
  in
  Cmd.group
    (Cmd.info "etx-sim" ~version:"1.0.0" ~doc)
    [
      demo_cmd;
      figure8_cmd;
      figure7_cmd;
      figure1_cmd;
      failover_cmd;
      backoff_cmd;
      loss_cmd;
      dbs_cmd;
      persistence_cmd;
      consensus_failover_cmd;
      throughput_cmd;
      shard_cmd;
      cross_cmd;
      batch_cmd;
      read_cache_cmd;
      storage_cmd;
      fd_quality_cmd;
      failover_phases_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
