(* Live-backend smoke: run the full e-Transaction cluster on the wall-clock
   runtime (OS threads, real timers), crash the primary application server
   mid-run, recover it, and assert the paper's exactly-once specification
   end-to-end. Exits 0 iff every client committed every request with no
   violation; writes a machine-readable summary (LIVE_smoke.json) for CI.

   With [-shards S] (S > 1) the same smoke runs on a sharded cluster:
   S independent replica groups behind the shard router, the crash/recovery
   targeting shard 0's primary, and the cluster-level specification
   (per-shard properties plus global exactly-once) checked at the end.

   With [-cache] every app server carries a method cache with
   commit-piggybacked invalidation, clients issue a read-dominant mix
   (three audits per update) so the crash lands mid-read-burst, and with
   [-obs] the run additionally asserts that the burst recorded cache hits
   and that the Prometheus dump re-parses consistently.

   With [-replicas R] (R > 0) every database gets R asynchronous change-log
   read replicas; clients issue the same read-dominant mix (so cache-miss
   audits route to the replicas and the crash lands mid-read-burst), and
   with [-obs] the run additionally asserts that the replicas actually
   served reads ([replica.served] > 0 in the dump). [-group-commit]
   coalesces concurrent redo-log forces into one disk write per window.

   With [-cross] (implies at least 2 shards) every client repeatedly
   transfers between one of its accounts on shard 0 and one on shard 1, so
   each request is a cross-shard e-Transaction committed via Paxos Commit
   and shard 0's primary coordinates every instance. The crash targets that
   coordinator mid-transfer; the run asserts the global atomic outcome:
   cluster spec (including global atomicity) plus per-account balances that
   move in lock-step with the transfers that actually committed — a
   transfer is never half-applied across the two shards.

   With [-migrate] (implies at least 2 shards) the cluster is built with
   elastic reconfiguration and one pre-provisioned spare group; after a
   warm-up the run splits group 0's slots toward the spare while the
   clients keep issuing, crashes shard 0's primary mid-migration, and
   asserts the epoch flip happened, every request committed exactly once
   and every key's balance is continuous at its new home group. *)

let clients = ref 3
let requests = ref 4
let shards = ref 1
let batch = ref 1
let cache = ref false
let replicas = ref 0
let replica_bound = ref 8
let group_commit = ref false
let cross = ref false
let migrate = ref false
let seed = ref 42
let out = ref "LIVE_smoke.json"
let obs = ref ""

let speclist =
  [
    ("-clients", Arg.Set_int clients, "N  concurrent clients (default 3)");
    ("-requests", Arg.Set_int requests, "N  requests per client (default 4)");
    ("-shards", Arg.Set_int shards, "S  replica groups (default 1)");
    ( "-batch",
      Arg.Set_int batch,
      "B  commit-window cap: 1 = classic path, B > 1 = leased batched \
       pipeline (default 1)" );
    ( "-cache",
      Arg.Set cache,
      "  method cache + commit-piggybacked invalidation: clients issue a \
       read-dominant mix (three audits per update) instead of pure updates, \
       and the crash lands mid-read-burst" );
    ( "-replicas",
      Arg.Set_int replicas,
      "R  asynchronous change-log read replicas per database; clients issue \
       the read-dominant mix so cache-miss audits route to the replicas \
       (default 0)" );
    ( "-replica-bound",
      Arg.Set_int replica_bound,
      "L  staleness bound (LSN delta) above which replica reads fall back \
       to the primary (default 8)" );
    ( "-group-commit",
      Arg.Set group_commit,
      "  coalesce concurrent redo-log forces into one disk write per \
       group-commit window" );
    ( "-cross",
      Arg.Set cross,
      "  cross-shard transfer smoke (implies -shards 2 unless larger): \
       clients transfer between shard-0 and shard-1 accounts, the \
       coordinating primary is crashed mid-transfer, and the run asserts \
       the atomic outcome on both shards" );
    ( "-migrate",
      Arg.Set migrate,
      "  elastic-reconfiguration smoke (implies -shards 2 unless larger): \
       a spare replica group is pre-provisioned, group 0's slots are split \
       toward it mid-run while clients keep issuing, shard 0's primary is \
       crashed during the migration, and the run asserts the epoch flip, \
       exactly-once delivery and value continuity at every key's new home" );
    ("-seed", Arg.Set_int seed, "N  network-model RNG seed (default 42)");
    ("-out", Arg.Set_string out, "FILE  summary JSON path (default LIVE_smoke.json)");
    ( "-obs",
      Arg.Set_string obs,
      "FILE  attach an observability registry and write its Prometheus dump \
       to FILE on exit" );
  ]

(* with -cache or -replicas, request r of the per-client script is an
   update only every fourth call (r mod 4 = 3) and an audit of the client's
   account otherwise; without either every request is an update, as before *)
let read_mix () = !cache || !replicas > 0

let body_for ~acct r =
  if read_mix () && r mod 4 <> 3 then acct else acct ^ ":1"

let updates_per_client n_requests =
  if read_mix () then n_requests / 4 else n_requests

let obs_registry () = if !obs = "" then None else Some (Obs.Registry.create ())

(* Dump the registry as Prometheus text, then re-parse the dump and
   cross-check the committed counter against delivered records — the same
   consistency gate the simulator's --obs path applies. *)
let obs_violations ~n_delivered reg =
  match reg with
  | None -> []
  | Some reg ->
      let dump = Obs.Export_prom.to_string reg in
      let oc = open_out !obs in
      output_string oc dump;
      close_out oc;
      Printf.printf "wrote %s\n%!" !obs;
      let committed =
        int_of_float
          (List.fold_left ( +. ) 0.
             (Obs.Export_prom.counter_values dump
                ~metric:"etx_client_committed"))
      in
      if committed <> n_delivered then
        [
          Printf.sprintf
            "obs: etx_client_committed=%d in %s but %d records delivered"
            committed !obs n_delivered;
        ]
      else []

let write_summary ?(epoch = 0) ~out ~n_shards ~n_clients ~n_requests
    ~n_delivered ~wall_s ~violations ~ok () =
  let open Stats.Json in
  let doc =
    Obj
      [
        ("schema", String "etx-live-smoke/7");
        ("backend", String "live");
        ("shards", Int n_shards);
        ("batch", Int !batch);
        ("cache", Bool !cache);
        ("replicas", Int !replicas);
        ("group_commit", Bool !group_commit);
        ("cross", Bool !cross);
        ("migrate", Bool !migrate);
        ("epoch", Int epoch);
        ("clients", Int n_clients);
        ("requests_per_client", Int n_requests);
        ("delivered", Int n_delivered);
        ("crash_injected", Bool true);
        ("recover_injected", Bool true);
        ("wall_s", Float wall_s);
        ("violations", List (List.map (fun v -> String v) violations));
        ("ok", Bool ok);
      ]
  in
  let oc = open_out out in
  to_channel oc doc;
  close_out oc

let report ~n_shards ~n_delivered ~total ~wall_s ~violations ~ok =
  Printf.printf "etx_live: %d/%d delivered in %.1f s wall; %s (summary: %s)\n%!"
    n_delivered total wall_s
    (if ok then
       if !migrate then
         Printf.sprintf
           "spec OK — online split committed under a primary crash, \
            exactly-once and value continuity held across the epoch flip \
            (%d groups)"
           n_shards
       else if !cross then
         Printf.sprintf
           "spec OK — every cross-shard transfer committed atomically on \
            all %d shards across coordinator crash+recovery"
           n_shards
       else if n_shards > 1 then
         Printf.sprintf
           "spec OK — exactly-once held on all %d shards across crash+recovery"
           n_shards
       else "spec OK — exactly-once held across crash+recovery"
     else "FAILED: " ^ String.concat "; " violations)
    !out;
  exit (if ok then 0 else 1)

(* ------------------------------------------------------------------ *)
(* Single-group path: the original smoke, unchanged behaviour. *)

let run_single () =
  let n_clients = !clients and n_requests = !requests in
  let reg = obs_registry () in
  let lt = Runtime_live.create ~seed:!seed ?obs:reg () in
  let rt = Runtime_live.runtime lt in
  (* disjoint accounts: each client updates its own, so every transaction
     must commit and the per-account balance checks the commit count *)
  let seed_data =
    Workload.Bank.seed_accounts
      (List.init n_clients (fun i -> (Printf.sprintf "acct%d" i, 1000)))
  in
  let script_for i ~issue =
    for r = 0 to n_requests - 1 do
      ignore (issue (body_for ~acct:(Printf.sprintf "acct%d" i) r))
    done
  in
  let business =
    if read_mix () then Workload.Bank.mixed else Workload.Bank.update
  in
  let t_start = Unix.gettimeofday () in
  let d =
    Etx.Deployment.build ~rt ~recoverable:true ~batch:!batch ~cache:!cache
      ~replicas:!replicas ~replica_bound:!replica_bound
      ~group_commit:!group_commit ~seed_data ~business ~script:(script_for 0)
      ()
  in
  let extra =
    List.init (n_clients - 1) (fun i ->
        Etx.Client.spawn rt
          ~name:(Printf.sprintf "client%d" (i + 1))
          ~servers:d.app_servers
          ~script:(script_for (i + 1))
          ())
  in
  let all_clients = d.client :: extra in
  let delivered () =
    List.fold_left
      (fun acc c -> acc + List.length (Etx.Client.records c))
      0 all_clients
  in
  let total = n_clients * n_requests in
  let primary = Etx.Deployment.primary d in
  (* phase 1: let the cluster commit a few transactions *)
  let warm = rt.run_until ~deadline:60_000. (fun () -> delivered () >= min total 2) in
  if not warm then prerr_endline "etx_live: WARNING: slow start";
  (* phase 2: kill the primary mid-run, let the cluster fail over... *)
  Printf.printf "crashing primary (p%d %s) at %.0f ms, %d/%d delivered\n%!"
    primary (rt.name_of primary) (Runtime_live.now_ms lt) (delivered ()) total;
  rt.crash primary;
  ignore (rt.run_until ~deadline:(Runtime_live.now_ms lt +. 1_500.) (fun () -> false));
  (* ...then bring it back: it must rejoin from its stable registers *)
  Printf.printf "recovering primary at %.0f ms, %d/%d delivered\n%!"
    (Runtime_live.now_ms lt) (delivered ()) total;
  rt.recover primary;
  (* phase 3: wait for every client (run_to_quiescence only watches the
     deployment's own), then let the databases settle *)
  let all_done () = List.for_all Etx.Client.script_done all_clients in
  let finished = rt.run_until ~deadline:240_000. all_done in
  let settled =
    finished && Etx.Deployment.run_to_quiescence ~deadline:30_000. d
  in
  let wall_s = Unix.gettimeofday () -. t_start in
  let n_delivered = delivered () in
  let scripts_done = List.for_all Etx.Client.script_done all_clients in
  let violations = if settled then Etx.Spec.check_all d else [] in
  (* duplicate check for the extra clients (Spec covers d.client + the
     databases): each account must show exactly [n_requests] increments *)
  let dup_violations =
    List.concat_map
      (fun (dbpid, rm) ->
        List.filter_map
          (fun i ->
            let acct = Printf.sprintf "acct%d" i in
            let expect =
              Dbms.Value.Int (1000 + updates_per_client n_requests)
            in
            match Dbms.Rm.read_committed rm acct with
            | Some v when Dbms.Value.equal v expect -> None
            | Some v ->
                Some
                  (Printf.sprintf
                     "db p%d: %s = %s, expected %s (lost or duplicated \
                      commit)"
                     dbpid acct (Dbms.Value.to_string v)
                     (Dbms.Value.to_string expect))
            | None -> Some (Printf.sprintf "db p%d: %s missing" dbpid acct))
          (List.init n_clients (fun i -> i)))
      d.dbs
  in
  let violations =
    violations @ dup_violations
    @ obs_violations ~n_delivered reg
    @ (match reg with
      | Some r when !cache && settled ->
          (* the read burst must actually exercise the cache *)
          if Obs.Registry.counter_total r "cache.hit" > 0 then []
          else [ "cache: no hits recorded during the read burst" ]
      | _ -> [])
    @ (match reg with
      | Some r when !replicas > 0 && settled ->
          (* the read burst must actually exercise the replicas *)
          if Obs.Registry.counter_total r "replica.served" > 0 then []
          else [ "replicas: no reads served during the read burst" ]
      | _ -> [])
    @ (if settled then [] else [ "run did not quiesce before the deadline" ])
    @ (if scripts_done then [] else [ "a client script did not finish" ])
    @
    if n_delivered = total then []
    else [ Printf.sprintf "delivered %d of %d requests" n_delivered total ]
  in
  let ok = violations = [] in
  write_summary ~out:!out ~n_shards:1 ~n_clients ~n_requests ~n_delivered
    ~wall_s ~violations ~ok ();
  Runtime_live.shutdown lt;
  report ~n_shards:1 ~n_delivered ~total ~wall_s ~violations ~ok

(* ------------------------------------------------------------------ *)
(* Sharded path. *)

(* one account per client, dealt so shard populations differ by at most 1 *)
let client_keys map ~n_clients ~n_shards =
  let cap = (n_clients + n_shards - 1) / n_shards in
  let count = Array.make n_shards 0 in
  let rec scan a acc remaining =
    if remaining = 0 then List.rev acc
    else
      let key = Printf.sprintf "acct%d" a in
      let s = Etx.Shard_map.shard_of map key in
      if count.(s) < cap then begin
        count.(s) <- count.(s) + 1;
        scan (a + 1) (key :: acc) (remaining - 1)
      end
      else scan (a + 1) acc remaining
  in
  scan 0 [] n_clients

let run_sharded () =
  let n_clients = !clients and n_requests = !requests and n_shards = !shards in
  let reg = obs_registry () in
  let lt = Runtime_live.create ~seed:!seed ?obs:reg () in
  let rt = Runtime_live.runtime lt in
  let map = Etx.Shard_map.create ~shards:n_shards () in
  let keys = client_keys map ~n_clients ~n_shards in
  let seed_data = Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys) in
  let scripts =
    List.map
      (fun key ~issue ->
        for r = 0 to n_requests - 1 do
          ignore (issue (body_for ~acct:key r))
        done)
      keys
  in
  let business =
    if read_mix () then Workload.Bank.mixed else Workload.Bank.update
  in
  let t_start = Unix.gettimeofday () in
  let c =
    Cluster.build ~map ~recoverable:true ~batch:!batch ~cache:!cache
      ~replicas:!replicas ~replica_bound:!replica_bound
      ~group_commit:!group_commit ~seed_data ~business ~rt ~scripts ()
  in
  let delivered () = List.length (Cluster.all_records c) in
  let total = n_clients * n_requests in
  let primary = Cluster.primary c ~shard:0 in
  let warm = rt.run_until ~deadline:60_000. (fun () -> delivered () >= min total 2) in
  if not warm then prerr_endline "etx_live: WARNING: slow start";
  (* crash shard 0's primary: the other shards must keep committing while
     shard 0 fails over, and the recovered primary rejoins from its log *)
  Printf.printf
    "crashing shard-0 primary (p%d %s) at %.0f ms, %d/%d delivered\n%!"
    primary (rt.name_of primary) (Runtime_live.now_ms lt) (delivered ()) total;
  rt.crash primary;
  ignore (rt.run_until ~deadline:(Runtime_live.now_ms lt +. 1_500.) (fun () -> false));
  Printf.printf "recovering shard-0 primary at %.0f ms, %d/%d delivered\n%!"
    (Runtime_live.now_ms lt) (delivered ()) total;
  rt.recover primary;
  let settled = Cluster.run_to_quiescence ~deadline:240_000. c in
  let wall_s = Unix.gettimeofday () -. t_start in
  let n_delivered = delivered () in
  let scripts_done = List.for_all Etx.Client.script_done c.clients in
  let violations = if settled then Cluster.Spec.check_all c else [] in
  (* balance check: each account lives on exactly its home shard and must
     show exactly [n_requests] increments on every replica there *)
  let dup_violations =
    List.concat_map
      (fun key ->
        let home = Cluster.shard_of_key c key in
        let expect = Dbms.Value.Int (1000 + updates_per_client n_requests) in
        List.filter_map
          (fun (dbpid, rm) ->
            match Dbms.Rm.read_committed rm key with
            | Some v when Dbms.Value.equal v expect -> None
            | Some v ->
                Some
                  (Printf.sprintf
                     "shard %d db p%d: %s = %s, expected %s (lost or \
                      duplicated commit)"
                     home dbpid key (Dbms.Value.to_string v)
                     (Dbms.Value.to_string expect))
            | None ->
                Some (Printf.sprintf "shard %d db p%d: %s missing" home dbpid key))
          (Cluster.group c home).Cluster.dbs)
      keys
  in
  let violations =
    violations
    @ (match reg with
      | Some r when settled -> Cluster.Spec.obs_consistency r c
      | _ -> [])
    @ (match reg with
      | Some r when !cache && settled ->
          if Obs.Registry.counter_total r "cache.hit" > 0 then []
          else [ "cache: no hits recorded during the read burst" ]
      | _ -> [])
    @ (match reg with
      | Some r when !replicas > 0 && settled ->
          if Obs.Registry.counter_total r "replica.served" > 0 then []
          else [ "replicas: no reads served during the read burst" ]
      | _ -> [])
    @ dup_violations
    @ obs_violations ~n_delivered reg
    @ (if settled then [] else [ "run did not quiesce before the deadline" ])
    @ (if scripts_done then [] else [ "a client script did not finish" ])
    @
    if n_delivered = total then []
    else [ Printf.sprintf "delivered %d of %d requests" n_delivered total ]
  in
  let ok = violations = [] in
  write_summary ~out:!out ~n_shards ~n_clients ~n_requests ~n_delivered
    ~wall_s ~violations ~ok ();
  Runtime_live.shutdown lt;
  report ~n_shards ~n_delivered ~total ~wall_s ~violations ~ok

(* ------------------------------------------------------------------ *)
(* Cross-shard path: every request is a cross-shard e-Transaction. *)

(* the first [n] accounts (in acct-number order) homed on [shard] *)
let shard_accounts map ~shard ~n =
  let rec scan a acc remaining =
    if remaining = 0 then List.rev acc
    else
      let key = Printf.sprintf "acct%d" a in
      if Etx.Shard_map.shard_of map key = shard then
        scan (a + 1) (key :: acc) (remaining - 1)
      else scan (a + 1) acc remaining
  in
  scan 0 [] n

let run_cross () =
  let n_clients = !clients and n_requests = !requests and n_shards = !shards in
  let reg = obs_registry () in
  let lt = Runtime_live.create ~seed:!seed ?obs:reg () in
  let rt = Runtime_live.runtime lt in
  let map = Etx.Shard_map.create ~shards:n_shards () in
  (* client i transfers from its own shard-0 account into its own shard-1
     account, so every request spans two replica groups and shard 0's
     primary coordinates every Paxos Commit instance *)
  let pairs =
    List.combine
      (shard_accounts map ~shard:0 ~n:n_clients)
      (shard_accounts map ~shard:1 ~n:n_clients)
  in
  let seed_data =
    Workload.Bank.seed_accounts
      (List.concat_map (fun (f, t) -> [ (f, 1000); (t, 1000) ]) pairs)
  in
  let scripts =
    List.map
      (fun (f, t) ~issue ->
        for _ = 1 to n_requests do
          ignore (issue (Printf.sprintf "%s:%s:1" f t))
        done)
      pairs
  in
  let t_start = Unix.gettimeofday () in
  let c =
    Cluster.build ~map ~recoverable:true ~cross:true ~seed_data
      ~business:Workload.Bank.transfer ~rt ~scripts ()
  in
  let delivered () = List.length (Cluster.all_records c) in
  let total = n_clients * n_requests in
  let coordinator = Cluster.primary c ~shard:0 in
  let warm = rt.run_until ~deadline:60_000. (fun () -> delivered () >= min total 2) in
  if not warm then prerr_endline "etx_live: WARNING: slow start";
  (* crash the server coordinating every in-flight commit instance: the
     remaining shard-0 servers (or any participant's cleaner) must drive
     the open instances to a joint decision, and the recovered coordinator
     rejoins from its stable registers *)
  Printf.printf
    "crashing coordinator (shard-0 primary p%d %s) at %.0f ms, %d/%d \
     delivered\n%!"
    coordinator (rt.name_of coordinator) (Runtime_live.now_ms lt) (delivered ())
    total;
  rt.crash coordinator;
  ignore (rt.run_until ~deadline:(Runtime_live.now_ms lt +. 1_500.) (fun () -> false));
  Printf.printf "recovering coordinator at %.0f ms, %d/%d delivered\n%!"
    (Runtime_live.now_ms lt) (delivered ()) total;
  rt.recover coordinator;
  let settled = Cluster.run_to_quiescence ~deadline:240_000. c in
  let wall_s = Unix.gettimeofday () -. t_start in
  let n_delivered = delivered () in
  let scripts_done = List.for_all Etx.Client.script_done c.clients in
  let violations = if settled then Cluster.Spec.check_all c else [] in
  (* atomic outcome: a transfer that committed as a transfer moved one unit
     on BOTH shards; one that aborted (or degraded to the read-only failure
     probe under crash turmoil) moved nothing on either. Derive each pair's
     expected balances from the delivered results and check every replica
     of both home shards — any half-applied transfer shows up here. *)
  let records = Cluster.all_records c in
  let atomic_violations =
    List.concat_map
      (fun (f, t) ->
        let moved =
          List.length
            (List.filter
               (fun (r : Etx.Client.record) ->
                 r.result = Printf.sprintf "transferred:1:%s->%s" f t)
               records)
        in
        List.concat_map
          (fun (key, expect) ->
            let home = Cluster.shard_of_key c key in
            List.filter_map
              (fun (dbpid, rm) ->
                match Dbms.Rm.read_committed rm key with
                | Some (Dbms.Value.Int v) when v = expect -> None
                | v ->
                    Some
                      (Printf.sprintf
                         "shard %d db p%d: %s = %s, expected %d after %d \
                          committed transfers (half-applied cross-shard \
                          transaction)"
                         home dbpid key
                         (match v with
                         | Some x -> Dbms.Value.to_string x
                         | None -> "missing")
                         expect moved))
              (Cluster.group c home).Cluster.dbs)
          [ (f, 1000 - moved); (t, 1000 + moved) ])
      pairs
  in
  let violations =
    violations
    @ (match reg with
      | Some r when settled -> Cluster.Spec.obs_consistency r c
      | _ -> [])
    @ (match reg with
      | Some r when settled ->
          (* the run must actually exercise the cross-shard path *)
          if Obs.Registry.counter_total r "txn.cross_shard" > 0 then []
          else [ "cross: no cross-shard transactions recorded" ]
      | _ -> [])
    @ atomic_violations
    @ obs_violations ~n_delivered reg
    @ (if settled then [] else [ "run did not quiesce before the deadline" ])
    @ (if scripts_done then [] else [ "a client script did not finish" ])
    @
    if n_delivered = total then []
    else [ Printf.sprintf "delivered %d of %d requests" n_delivered total ]
  in
  let ok = violations = [] in
  write_summary ~out:!out ~n_shards ~n_clients ~n_requests ~n_delivered
    ~wall_s ~violations ~ok ();
  Runtime_live.shutdown lt;
  report ~n_shards ~n_delivered ~total ~wall_s ~violations ~ok

(* ------------------------------------------------------------------ *)
(* Elastic-reconfiguration path: split group 0 toward a pre-provisioned
   spare while the clients keep issuing, with shard 0's primary crashed
   mid-migration. *)

let run_migrate () =
  let n_clients = !clients and n_requests = !requests and n_shards = !shards in
  let reg = obs_registry () in
  let lt = Runtime_live.create ~seed:!seed ?obs:reg () in
  let rt = Runtime_live.runtime lt in
  let map = Etx.Shard_map.create ~shards:n_shards () in
  let keys = client_keys map ~n_clients ~n_shards in
  let seed_data =
    Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
  in
  let scripts =
    List.map
      (fun key ~issue ->
        for _ = 1 to n_requests do
          ignore (issue (key ^ ":1"))
        done)
      keys
  in
  let t_start = Unix.gettimeofday () in
  let c =
    Cluster.build ~map ~recoverable:true ~reconfig:true ~provision:1
      ~seed_data ~business:Workload.Bank.update ~rt ~scripts ()
  in
  let delivered () = List.length (Cluster.all_records c) in
  let total = n_clients * n_requests in
  let primary = Cluster.primary c ~shard:0 in
  let warm =
    rt.run_until ~deadline:60_000. (fun () -> delivered () >= min total 2)
  in
  if not warm then prerr_endline "etx_live: WARNING: slow start";
  (* start the online split, then crash the source group's primary while
     the migration is in flight: a surviving config-group server must take
     the driver over (or the driver re-drive past the suspect) and the
     flip still happen *)
  let e1 = Cluster.split c ~group:0 ~target:n_shards in
  Printf.printf
    "splitting group 0 -> group %d (epoch %d), then crashing shard-0 \
     primary (p%d %s) at %.0f ms, %d/%d delivered\n%!"
    n_shards e1 primary (rt.name_of primary) (Runtime_live.now_ms lt)
    (delivered ()) total;
  rt.crash primary;
  ignore
    (rt.run_until ~deadline:(Runtime_live.now_ms lt +. 1_500.) (fun () ->
         false));
  Printf.printf "recovering shard-0 primary at %.0f ms, %d/%d delivered\n%!"
    (Runtime_live.now_ms lt) (delivered ()) total;
  rt.recover primary;
  let flipped = Cluster.await_epoch ~deadline:240_000. c e1 in
  let settled = Cluster.run_to_quiescence ~deadline:240_000. c in
  let wall_s = Unix.gettimeofday () -. t_start in
  let n_delivered = delivered () in
  let scripts_done = List.for_all Etx.Client.script_done c.clients in
  let violations = if settled then Cluster.Spec.check_all c else [] in
  (* value continuity at each key's CURRENT home: seed + every committed
     increment, on every replica of the owning group — for moved keys this
     proves the copy carried the state across the split *)
  let final_map = Cluster.current_map c in
  let dup_violations =
    List.concat_map
      (fun key ->
        let home = Etx.Shard_map.shard_of final_map key in
        let expect = Dbms.Value.Int (1000 + n_requests) in
        List.filter_map
          (fun (dbpid, rm) ->
            match Dbms.Rm.read_committed rm key with
            | Some v when Dbms.Value.equal v expect -> None
            | Some v ->
                Some
                  (Printf.sprintf
                     "group %d db p%d: %s = %s, expected %s (lost or \
                      duplicated commit across the migration)"
                     home dbpid key (Dbms.Value.to_string v)
                     (Dbms.Value.to_string expect))
            | None ->
                Some
                  (Printf.sprintf "group %d db p%d: %s missing" home dbpid key))
          (Cluster.group c home).Cluster.dbs)
      keys
  in
  let moved_keys =
    List.filter
      (fun k ->
        Etx.Shard_map.shard_of map k <> Etx.Shard_map.shard_of final_map k)
      keys
  in
  let violations =
    violations
    @ (match reg with
      | Some r when settled -> Cluster.Spec.obs_consistency r c
      | _ -> [])
    @ (match reg with
      | Some r when settled && moved_keys <> [] ->
          (* a split that moved live keys must have copied something *)
          if Obs.Registry.counter_total r "migrate.keys_moved" > 0 then []
          else [ "migrate: keys changed owner but none were copied" ]
      | _ -> [])
    @ dup_violations
    @ obs_violations ~n_delivered reg
    @ (if flipped then [] else [ "epoch flip did not happen" ])
    @ (if settled then [] else [ "run did not quiesce before the deadline" ])
    @ (if scripts_done then [] else [ "a client script did not finish" ])
    @
    if n_delivered = total then []
    else [ Printf.sprintf "delivered %d of %d requests" n_delivered total ]
  in
  let ok = violations = [] in
  write_summary ~epoch:(Cluster.epoch c) ~out:!out ~n_shards ~n_clients
    ~n_requests ~n_delivered ~wall_s ~violations ~ok ();
  Runtime_live.shutdown lt;
  report ~n_shards ~n_delivered ~total ~wall_s ~violations ~ok

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "etx_live [-clients N] [-requests N] [-shards S] [-batch B] [-cache] \
     [-replicas R] [-replica-bound L] [-group-commit] [-cross] [-migrate] \
     [-seed N] [-out FILE] [-obs FILE]";
  if !shards < 1 then (prerr_endline "etx_live: -shards must be >= 1"; exit 2);
  if !batch < 1 then (prerr_endline "etx_live: -batch must be >= 1"; exit 2);
  if !replicas < 0 then
    (prerr_endline "etx_live: -replicas must be >= 0"; exit 2);
  if !cross && !migrate then (
    prerr_endline "etx_live: -cross and -migrate are mutually exclusive";
    exit 2);
  if !cross then begin
    if !cache || !replicas > 0 || !batch > 1 then (
      prerr_endline
        "etx_live: -cross cannot be combined with -cache, -replicas or -batch";
      exit 2);
    if !shards < 2 then shards := 2;
    run_cross ()
  end
  else if !migrate then begin
    if !cache || !replicas > 0 || !batch > 1 then (
      prerr_endline
        "etx_live: -migrate cannot be combined with -cache, -replicas or \
         -batch";
      exit 2);
    if !shards < 2 then shards := 2;
    run_migrate ()
  end
  else if !shards = 1 then run_single ()
  else run_sharded ()
